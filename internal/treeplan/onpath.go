package treeplan

import "time"

// OnPath is the paper's hash-on-path planner (§3.1): at each equipped
// switch on a worker's path towards the master, the box is selected by
// the request/tree hash modulo the live boxes there. Dead boxes are
// skipped, which is how replanning after a failure works — the hash is
// unchanged, so the surviving boxes' choices shift deterministically and
// every shim shifts the same way.
//
// It is behavior-identical to the pre-refactor cluster.Deployment.Plan
// (the oracle test pins this), so swapping planners is purely additive.
type OnPath struct{}

// Name implements Planner.
func (OnPath) Name() string { return "onpath" }

// Plan implements Planner.
func (OnPath) Plan(topo Topology, req Request) Tree {
	start := time.Now()
	t, deadSkipped, slowAvoided := plan(topo, req, func(_ string, alive []Box) Box {
		return alive[req.Hash%uint64(len(alive))]
	})
	observePlan(start, req, deadSkipped, slowAvoided)
	return t
}

// observePlan records the planner metrics shared by all implementations:
// planning latency, replan count (attempt > 0), dead boxes skipped, and
// congested boxes routed around.
func observePlan(start time.Time, req Request, deadSkipped, slowAvoided int) {
	obsPlanComputeUs.Observe(time.Since(start).Microseconds())
	if req.Attempt > 0 {
		obsPlanReplans.Inc()
	}
	if deadSkipped > 0 {
		obsPlanDeadSkipped.Add(int64(deadSkipped))
	}
	if slowAvoided > 0 {
		obsPlanSlowAvoided.Add(int64(slowAvoided))
	}
}
