// Package treeplan is the tree control plane: it decides, for one
// aggregation request, which agg boxes the partial results of each worker
// traverse on their way to the master (§3.1). The data plane — shims,
// boxes, the simulator — asks a Planner for a Tree and executes it; how
// the boxes are chosen is the planner's business alone, which is the seam
// ROADMAP items 1 (congestion-aware dynamic trees) and 2 (bounded
// placement) plug into.
//
// Planning must be per-worker decomposable: a worker shim plans with only
// itself in Request.Workers and must get the same route the master
// computed for it, because shims and masters coordinate purely through
// the hashed request identifier (§3.1: "The next agg box on-path is
// determined by hashing an application/request identifier"), never by
// exchanging plans. Both built-in planners — OnPath (the paper's pure
// hash) and LoadAware (telemetry-weighted rendezvous hashing) — have this
// property; new planners must preserve it.
//
// The same Planner serves the live fabric (cluster.Deployment implements
// Topology over hosts and deployed boxes) and the simulator
// (strategies.NetAgg adapts topology.Topology), so planner experiments
// run unchanged in both worlds.
package treeplan

import "netagg/internal/topology"

// Box is one candidate aggregation box as the planner sees it.
type Box struct {
	// ID is the cluster-unique box identifier.
	ID uint64
	// Addr is the box's data listen address ("" in the simulator).
	Addr string
	// Switch names the switch the box is attached to.
	Switch string
	// Dead marks a box the failure monitor has declared failed; planners
	// must never route through a dead box.
	Dead bool
	// Slow marks a box the replanner has declared congested: planners
	// avoid it whenever the switch offers a non-slow alternative, but —
	// unlike Dead — may still route through it when it is the only box
	// standing, because a slow tree beats no tree.
	Slow bool
}

// Request identifies one aggregation tree to plan.
type Request struct {
	// Req is the application-level request identifier.
	Req uint64
	// Tree is the aggregation tree index within the request (§3.1
	// "Multiple aggregation trees per application").
	Tree int
	// Attempt is the recovery attempt being planned (0 = first try).
	// OnPath ignores it — replans change only by excluding boxes that
	// died — but planners may use it to diversify retries.
	Attempt int
	// Hash is the request/tree hash every consistent-planning decision
	// derives from. NewRequest fills it with RequestHash; the simulator
	// supplies its own per-job hash so simulated ECMP and box choices
	// stay aligned with the rest of the simulation.
	Hash uint64
	// Master is the master host's name (the tree root's destination).
	Master string
	// Workers lists the worker hosts to plan routes for. A worker shim
	// passes only itself; the master passes all workers. Per-worker
	// decomposability (see the package comment) makes both views agree.
	Workers []string
}

// NewRequest builds a Request with the canonical live-fabric Hash.
func NewRequest(req uint64, tree, attempt int, master string, workers []string) Request {
	return Request{
		Req: req, Tree: tree, Attempt: attempt,
		Hash:   RequestHash(req, tree),
		Master: master, Workers: workers,
	}
}

// RequestHash derives the live fabric's request/tree hash (the salt is
// fixed so every shim and master computes the same value independently).
func RequestHash(req uint64, tree int) uint64 {
	return topology.FlowHash(0xC4A1, req, uint64(tree)+1)
}

// Tree is one planned aggregation tree. Each tree is an independent
// wire-level request (see cluster.WireReq), so trees can safely share agg
// boxes — e.g. the box in the master's rack, which every tree's chain
// ends at (§3.1).
type Tree struct {
	// Routes[worker] is the box chain the worker's partial results
	// traverse, ordered from first hop to chain root (an empty chain
	// means: send directly to the master).
	Routes map[string][]Box
	// Expect[box ID] counts the distinct direct sources (workers and
	// upstream boxes) the box must hear an end-of-stream from (§3.2.2
	// "Partial result collection").
	Expect map[uint64]int
	// Finals counts the sources that deliver results to the master shim
	// for this tree: distinct chain roots plus workers with no on-path
	// box.
	Finals int
}

// TotalFinals counts result deliveries the master waits for across trees.
func TotalFinals(trees []Tree) int {
	n := 0
	for i := range trees {
		n += trees[i].Finals
	}
	return n
}

// RouteAddrs converts a box chain plus the master result address into the
// wire route carried by THello frames.
func RouteAddrs(chain []Box, masterAddr string) []string {
	out := make([]string, 0, len(chain)+1)
	for _, b := range chain {
		out = append(out, b.Addr)
	}
	return append(out, masterAddr)
}

// Topology is the planner's read-only view of the network: which switches
// a worker-to-master path crosses and which boxes each switch offers.
// cluster.Deployment implements it for the live fabric; the simulator
// adapts topology.Topology.
type Topology interface {
	// PathSwitches lists the switches on the up-down path from a worker
	// to the master, in traversal order. Implementations with equal-cost
	// multipath use hash to pin one path; single-path fabrics ignore it.
	PathSwitches(worker, master string, hash uint64) []string
	// BoxesAt lists the boxes attached to a switch in deployment order,
	// including dead ones (planners filter on Box.Dead so they can count
	// what they skipped).
	BoxesAt(sw string) []Box
}

// Planner plans one aggregation tree over a topology. Implementations
// must be pure with respect to (topo, req) plus whatever telemetry they
// consume, deterministic, and per-worker decomposable (see the package
// comment); they are called concurrently from many shims.
type Planner interface {
	// Name identifies the planner in experiment output and logs.
	Name() string
	// Plan computes the request's aggregation tree.
	Plan(topo Topology, req Request) Tree
}

// plan builds a Tree by walking each worker's path and asking pick to
// choose among the live boxes at every equipped switch. It is the shared
// skeleton of OnPath and LoadAware: the tree-shape bookkeeping (expected
// fan-in per box, finals at the master) is planner-independent. It
// returns the number of dead boxes skipped and slow boxes avoided for
// the planner to report.
//
// Slow boxes are excluded from the candidate set only when the switch
// offers a non-slow alternative — a switch whose every live box is
// congested still gets its best-effort box. Because the filter is
// deterministic and runs before pick, congestion marks shift every
// shim's choice identically, preserving per-worker decomposability.
func plan(topo Topology, req Request, pick func(sw string, alive []Box) Box) (Tree, int, int) {
	t := Tree{
		Routes: make(map[string][]Box, len(req.Workers)),
		Expect: make(map[uint64]int),
	}
	deadSkipped, slowAvoided := 0, 0
	type edge struct{ up, down uint64 }
	boxEdges := make(map[edge]bool)
	roots := make(map[uint64]bool)
	var alive []Box // reused across switches; Routes gets fresh slices
	for _, wname := range req.Workers {
		var chain []Box
		for _, sw := range topo.PathSwitches(wname, req.Master, req.Hash) {
			alive = alive[:0]
			slowHere := 0
			for _, b := range topo.BoxesAt(sw) {
				if b.Dead {
					deadSkipped++
					continue
				}
				if b.Slow {
					slowHere++
				}
				alive = append(alive, b)
			}
			if len(alive) == 0 {
				continue
			}
			if slowHere > 0 && slowHere < len(alive) {
				n := 0
				for _, b := range alive {
					if !b.Slow {
						alive[n] = b
						n++
					}
				}
				alive = alive[:n]
				slowAvoided += slowHere
			}
			chain = append(chain, pick(sw, alive))
		}
		t.Routes[wname] = chain
		if len(chain) == 0 {
			t.Finals++
			continue
		}
		t.Expect[chain[0].ID]++ // one direct worker stream
		for i := 0; i+1 < len(chain); i++ {
			boxEdges[edge{up: chain[i].ID, down: chain[i+1].ID}] = true
		}
		roots[chain[len(chain)-1].ID] = true
	}
	for e := range boxEdges {
		t.Expect[e.down]++
	}
	t.Finals += len(roots)
	return t, deadSkipped, slowAvoided
}
