package treeplan_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"netagg/internal/treeplan"
)

// TestHotTrackerHysteresisNoFlap pins the no-flap property: a load
// oscillating every tick around the entry threshold never enters the
// congested state, and once a box IS congested, oscillation above the
// exit threshold never clears it — only a sustained drop below
// ColdLoadUs does. Without the streak requirement and the two-threshold
// band, each oscillation would flip the mark and every flip would
// re-migrate the job's subtrees.
func TestHotTrackerHysteresisNoFlap(t *testing.T) {
	policy := treeplan.ReplanPolicy{HotLoadUs: 1000, ColdLoadUs: 500, HotStreak: 2}
	tr := treeplan.NewHotTracker(policy)
	const id = 1

	// Oscillation around the entry threshold: 1100, 900, 1100, 900, ...
	// never yields two consecutive hot ticks, so the box must stay cold.
	for i := 0; i < 20; i++ {
		load := int64(1100)
		if i%2 == 1 {
			load = 900
		}
		hot, changed := tr.Observe(id, load)
		if hot || changed {
			t.Fatalf("tick %d (load %d): hot=%v changed=%v, want cold and stable", i, load, hot, changed)
		}
	}

	// A sustained burst crosses the streak requirement exactly once.
	if hot, changed := tr.Observe(id, 1500); hot || changed {
		t.Fatalf("first sustained hot tick must not transition yet (hot=%v changed=%v)", hot, changed)
	}
	if hot, changed := tr.Observe(id, 1500); !hot || !changed {
		t.Fatalf("second sustained hot tick must transition (hot=%v changed=%v)", hot, changed)
	}

	// Oscillation inside the hysteresis band (900 is below HotLoadUs but
	// above ColdLoadUs) must hold the congested state.
	for i := 0; i < 20; i++ {
		load := int64(1100)
		if i%2 == 1 {
			load = 900
		}
		hot, changed := tr.Observe(id, load)
		if !hot || changed {
			t.Fatalf("band tick %d (load %d): hot=%v changed=%v, want hot and stable", i, load, hot, changed)
		}
	}

	// Even dips to ColdLoadUs must be sustained: a single cold tick
	// between hot ones resets the exit streak.
	for i := 0; i < 10; i++ {
		load := int64(400)
		if i%2 == 1 {
			load = 900
		}
		if hot, changed := tr.Observe(id, load); !hot || changed {
			t.Fatalf("mixed-exit tick %d: hot=%v changed=%v, want still hot", i, hot, changed)
		}
	}

	// Two consecutive cold ticks clear the mark.
	if hot, changed := tr.Observe(id, 400); !hot || changed {
		t.Fatalf("first cold tick must not clear yet (hot=%v changed=%v)", hot, changed)
	}
	if hot, changed := tr.Observe(id, 400); hot || !changed {
		t.Fatalf("second cold tick must clear (hot=%v changed=%v)", hot, changed)
	}
}

// TestHotTrackerCooldown verifies the cooldown window: StartCooldown
// holds for CooldownTicks observations and then expires.
func TestHotTrackerCooldown(t *testing.T) {
	tr := treeplan.NewHotTracker(treeplan.ReplanPolicy{HotLoadUs: 100, HotStreak: 1, CooldownTicks: 3})
	tr.Observe(7, 200) // creates state, transitions hot
	tr.StartCooldown(7)
	for i := 0; i < 3; i++ {
		if !tr.CoolingDown(7) {
			t.Fatalf("tick %d: cooldown expired early", i)
		}
		tr.Observe(7, 200)
	}
	if tr.CoolingDown(7) {
		t.Fatalf("cooldown must expire after CooldownTicks observations")
	}
}

// replanRecorder collects the Mark/Migrate calls a Replanner makes.
type replanRecorder struct {
	mu       sync.Mutex
	marks    []uint64
	clears   []uint64
	migrated []uint64
}

func (r *replanRecorder) mark(id uint64, congested bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if congested {
		r.marks = append(r.marks, id)
	} else {
		r.clears = append(r.clears, id)
	}
}

func (r *replanRecorder) migrate(id uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.migrated = append(r.migrated, id)
	return 2
}

// TestReplannerTicks drives a replanner over static telemetry with one
// hot box: the box must be marked and migrated exactly once (cooldown
// suppresses re-migration while it stays hot), then cleared once the
// telemetry cools.
func TestReplannerTicks(t *testing.T) {
	tel := treeplan.StaticTelemetry{
		1: {QueueDepth: 100}, // 100k µs — hot
		2: {QueueDepth: 1},   // idle
	}
	rec := &replanRecorder{}
	boxes := []treeplan.Box{{ID: 1, Switch: "tor:0"}, {ID: 2, Switch: "tor:0"}}
	r := treeplan.NewReplanner(treeplan.ReplannerConfig{
		Policy:    treeplan.ReplanPolicy{HotLoadUs: 20000, HotStreak: 2, CooldownTicks: 100},
		Boxes:     func() []treeplan.Box { return boxes },
		Telemetry: tel,
		Mark:      rec.mark,
		Migrate:   rec.migrate,
	})
	for i := 0; i < 10; i++ {
		r.Tick()
	}
	rec.mu.Lock()
	marks, migrated := append([]uint64(nil), rec.marks...), append([]uint64(nil), rec.migrated...)
	rec.mu.Unlock()
	if len(marks) != 1 || marks[0] != 1 {
		t.Fatalf("marks = %v, want exactly one mark of box 1", marks)
	}
	if len(migrated) != 1 || migrated[0] != 1 {
		t.Fatalf("migrated = %v, want exactly one migration of box 1", migrated)
	}

	// Cool the box: after HotStreak cold ticks the mark clears.
	tel[1] = treeplan.LoadSignal{}
	for i := 0; i < 5; i++ {
		r.Tick()
	}
	rec.mu.Lock()
	clears := append([]uint64(nil), rec.clears...)
	rec.mu.Unlock()
	if len(clears) != 1 || clears[0] != 1 {
		t.Fatalf("clears = %v, want exactly one clear of box 1", clears)
	}
}

// TestReplannerDeadBoxSkipped verifies dead boxes are left to the
// failure monitor: no mark, no migration, even at absurd load.
func TestReplannerDeadBoxSkipped(t *testing.T) {
	rec := &replanRecorder{}
	boxes := []treeplan.Box{{ID: 1, Switch: "tor:0", Dead: true}}
	r := treeplan.NewReplanner(treeplan.ReplannerConfig{
		Policy:    treeplan.ReplanPolicy{HotLoadUs: 1, HotStreak: 1},
		Boxes:     func() []treeplan.Box { return boxes },
		Telemetry: treeplan.StaticTelemetry{1: {QueueDepth: 1 << 20}},
		Mark:      rec.mark,
		Migrate:   rec.migrate,
	})
	for i := 0; i < 5; i++ {
		r.Tick()
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.marks) != 0 || len(rec.migrated) != 0 {
		t.Fatalf("dead box acted on: marks=%v migrated=%v", rec.marks, rec.migrated)
	}
}

// TestReplannerLoop exercises the ticker-driven loop end to end: start,
// observe at least one migration, stop (the leak gate verifies the loop
// goroutine exits).
func TestReplannerLoop(t *testing.T) {
	rec := &replanRecorder{}
	boxes := []treeplan.Box{{ID: 9, Switch: "tor:0"}}
	r := treeplan.NewReplanner(treeplan.ReplannerConfig{
		Interval:  time.Millisecond,
		Policy:    treeplan.ReplanPolicy{HotLoadUs: 1000, HotStreak: 1, CooldownTicks: 1000},
		Boxes:     func() []treeplan.Box { return boxes },
		Telemetry: treeplan.StaticTelemetry{9: {FlushUs: 5000}},
		Mark:      rec.mark,
		Migrate:   rec.migrate,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r.StartContext(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec.mu.Lock()
		n := len(rec.migrated)
		rec.mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replanner loop never migrated the hot box")
		}
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	// Stop is idempotent and must not hang on a second call.
	r.Stop()
}

// TestPlanAvoidsSlowBoxes verifies the planner skeleton's congestion
// avoidance: a Slow box is avoided while its switch has a non-slow
// alternative, and used as a last resort when every box there is slow.
func TestPlanAvoidsSlowBoxes(t *testing.T) {
	topo := &slowTopo{
		path: []string{"tor:0"},
		boxes: map[string][]treeplan.Box{
			"tor:0": {{ID: 1, Switch: "tor:0", Slow: true}, {ID: 2, Switch: "tor:0"}},
		},
	}
	req := treeplan.NewRequest(42, 0, 0, "master", []string{"w0"})
	for hash := uint64(0); hash < 8; hash++ {
		req.Hash = hash
		tree := treeplan.OnPath{}.Plan(topo, req)
		chain := tree.Routes["w0"]
		if len(chain) != 1 || chain[0].ID != 2 {
			t.Fatalf("hash %d: chain = %+v, want the non-slow box 2", hash, chain)
		}
	}

	// All boxes slow: the switch still aggregates (slow beats none).
	topo.boxes["tor:0"][1].Slow = true
	tree := treeplan.OnPath{}.Plan(topo, req)
	if len(tree.Routes["w0"]) != 1 {
		t.Fatalf("all-slow switch must still be equipped, got %+v", tree.Routes["w0"])
	}
}

// slowTopo is a single-path test topology with explicit box lists.
type slowTopo struct {
	path  []string
	boxes map[string][]treeplan.Box
}

func (s *slowTopo) PathSwitches(_, _ string, _ uint64) []string { return s.path }
func (s *slowTopo) BoxesAt(sw string) []treeplan.Box            { return s.boxes[sw] }
