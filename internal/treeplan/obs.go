package treeplan

import "netagg/internal/obs"

// Planner observability (obs-smoke validates these after a job): how long
// planning takes, how often requests are replanned after the first
// attempt, and how many dead boxes plans had to route around.
var (
	// obsPlanComputeUs is the latency of one Plan call in microseconds.
	obsPlanComputeUs = obs.H("plan.compute_us")
	// obsPlanReplans counts plans for recovery attempts (Attempt > 0).
	obsPlanReplans = obs.C("plan.replans")
	// obsPlanDeadSkipped counts dead boxes excluded from plans.
	obsPlanDeadSkipped = obs.C("plan.dead_boxes_skipped")
)
