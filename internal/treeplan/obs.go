package treeplan

import "netagg/internal/obs"

// Planner observability (obs-smoke validates these after a job): how long
// planning takes, how often requests are replanned after the first
// attempt, and how many dead boxes plans had to route around.
var (
	// obsPlanComputeUs is the latency of one Plan call in microseconds.
	obsPlanComputeUs = obs.H("plan.compute_us")
	// obsPlanReplans counts plans for recovery attempts (Attempt > 0).
	obsPlanReplans = obs.C("plan.replans")
	// obsPlanDeadSkipped counts dead boxes excluded from plans.
	obsPlanDeadSkipped = obs.C("plan.dead_boxes_skipped")
	// obsPlanSlowAvoided counts congested boxes plans routed around.
	obsPlanSlowAvoided = obs.C("plan.slow_boxes_avoided")
)

// Replanner observability (obs-smoke validates these after a forced
// migration): tick cadence, how many boxes are currently marked
// congested, and how migration activity breaks down.
var (
	// obsReplanTicks counts replanner scoring passes.
	obsReplanTicks = obs.C("replan.ticks")
	// obsReplanCongested is the number of boxes currently congested.
	obsReplanCongested = obs.G("replan.congested_boxes")
	// obsReplanMigrations counts migrations triggered (one per box
	// crossing the hot threshold outside its cooldown window).
	obsReplanMigrations = obs.C("replan.migrations")
	// obsReplanMigratedReqs counts pending requests redirected by
	// migrations.
	obsReplanMigratedReqs = obs.C("replan.migrated_requests")
	// obsReplanCooldownHolds counts migrations suppressed because the
	// box re-heated inside its cooldown window.
	obsReplanCooldownHolds = obs.C("replan.cooldown_holds")
)
