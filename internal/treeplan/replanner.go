package treeplan

import (
	"context"
	"sync"
	"time"
)

// ReplanPolicy is the hysteresis/cooldown policy of the dynamic-tree
// replanner (DESIGN.md §16). All thresholds are in the LoadUs scalar's
// microsecond-ish units; the zero value takes the documented defaults.
type ReplanPolicy struct {
	// HotLoadUs is the congestion entry threshold: a box whose load stays
	// at or above it for HotStreak consecutive ticks is declared
	// congested (default 20000 — e.g. 20 queued combine tasks, or 20ms
	// of flush latency plus heartbeat RTT).
	HotLoadUs int64
	// ColdLoadUs is the exit threshold: a congested box must stay at or
	// below it for HotStreak consecutive ticks before the mark clears
	// (default HotLoadUs/2). The band between the two thresholds is the
	// hysteresis region where state holds.
	ColdLoadUs int64
	// HotStreak is the consecutive-tick count required to enter or leave
	// the congested state (default 2). Raising it trades detection
	// latency for noise immunity.
	HotStreak int
	// CooldownTicks is the minimum number of ticks between migrations
	// off the same box (default 10). A box re-entering the congested
	// state inside its cooldown is still marked — planners avoid it —
	// but pending requests are not migrated again.
	CooldownTicks int
}

// withDefaults fills zero fields with the documented defaults.
func (p ReplanPolicy) withDefaults() ReplanPolicy {
	if p.HotLoadUs <= 0 {
		p.HotLoadUs = 20000
	}
	if p.ColdLoadUs <= 0 {
		p.ColdLoadUs = p.HotLoadUs / 2
	}
	if p.HotStreak <= 0 {
		p.HotStreak = 2
	}
	if p.CooldownTicks <= 0 {
		p.CooldownTicks = 10
	}
	return p
}

// hotState is one box's position in the hysteresis state machine.
type hotState struct {
	hot      bool
	streak   int // consecutive ticks beyond the active threshold
	cooldown int // ticks left before another migration may fire
	seen     bool
}

// HotTracker is the tick-driven hysteresis state machine shared by the
// live Replanner and the simulator's dynamic-tree strategy. It is
// deliberately time-free: callers feed it one load observation per box
// per tick, and it answers whether the box is congested under the
// policy's enter/exit thresholds and streak requirement. Oscillation
// across the entry threshold alone never flips the state (the no-flap
// property the hysteresis test pins): entering requires HotStreak
// consecutive hot ticks, and leaving requires HotStreak consecutive
// ticks at or below the lower exit threshold.
//
// HotTracker is not safe for concurrent use; the Replanner serialises
// access from its single loop goroutine.
type HotTracker struct {
	policy ReplanPolicy
	boxes  map[uint64]*hotState
}

// NewHotTracker creates a tracker under p (zero fields defaulted).
func NewHotTracker(p ReplanPolicy) *HotTracker {
	return &HotTracker{policy: p.withDefaults(), boxes: make(map[uint64]*hotState)}
}

// Observe feeds one tick's load for one box and steps its state machine.
// It returns the box's congested state after the observation and whether
// this observation flipped it.
func (t *HotTracker) Observe(id uint64, loadUs int64) (hot, changed bool) {
	s := t.boxes[id]
	if s == nil {
		s = &hotState{}
		t.boxes[id] = s
	}
	s.seen = true
	if s.cooldown > 0 {
		s.cooldown--
	}
	if !s.hot {
		if loadUs >= t.policy.HotLoadUs {
			s.streak++
			if s.streak >= t.policy.HotStreak {
				s.hot, s.streak = true, 0
				return true, true
			}
		} else {
			s.streak = 0
		}
		return false, false
	}
	if loadUs <= t.policy.ColdLoadUs {
		s.streak++
		if s.streak >= t.policy.HotStreak {
			s.hot, s.streak = false, 0
			return false, true
		}
	} else {
		s.streak = 0
	}
	return true, false
}

// Hot reports whether a box is currently marked congested.
func (t *HotTracker) Hot(id uint64) bool {
	s := t.boxes[id]
	return s != nil && s.hot
}

// CoolingDown reports whether a box is inside its post-migration
// cooldown window, during which further migrations off it are held.
func (t *HotTracker) CoolingDown(id uint64) bool {
	s := t.boxes[id]
	return s != nil && s.cooldown > 0
}

// StartCooldown opens a box's cooldown window (called after a
// migration fires for it).
func (t *HotTracker) StartCooldown(id uint64) {
	if s := t.boxes[id]; s != nil {
		s.cooldown = t.policy.CooldownTicks
	}
}

// Forget drops a box's state (box removed from the deployment or
// declared dead — the failure path owns it now).
func (t *HotTracker) Forget(id uint64) { delete(t.boxes, id) }

// sweep deletes state for boxes not observed since the last sweep and
// resets the seen marks, so departed boxes do not leak tracker entries.
func (t *HotTracker) sweep() {
	for id, s := range t.boxes {
		if !s.seen {
			delete(t.boxes, id)
			continue
		}
		s.seen = false
	}
}

// ReplannerConfig wires a Replanner to the deployment it scores. Boxes,
// Telemetry, and Mark are required; Migrate may be nil for a
// mark-only replanner (new plans avoid congested boxes, in-flight
// requests stay put).
type ReplannerConfig struct {
	// Interval is the scoring tick period (default 500ms).
	Interval time.Duration
	// Policy is the hysteresis/cooldown policy (zero fields defaulted).
	Policy ReplanPolicy
	// Boxes lists the candidate boxes each tick — typically
	// cluster.Deployment.PlannerBoxes. Dead boxes are skipped and their
	// tracker state dropped (revival restarts the streak from scratch).
	Boxes func() []Box
	// Telemetry supplies the load signals to score boxes with.
	Telemetry Telemetry
	// Mark flips the deployment's congested flag for a box, which
	// planners see as Box.Slow on the next plan.
	Mark func(id uint64, congested bool)
	// Migrate moves pending requests off a newly congested box
	// (typically shim.Master.MigrateAway) and returns how many requests
	// it redirected.
	Migrate func(id uint64) int
}

// Replanner is the dynamic re-planning loop (ROADMAP item 1, DESIGN.md
// §16): every tick it scores the deployment's boxes against live
// telemetry through a HotTracker, marks boxes crossing the congestion
// hysteresis so new plans route around them, and — once per cooldown
// window — migrates in-flight requests off a box that turned hot
// mid-job. Epoch tagging in the shim/transport layers makes the
// migration exactly-once (see MigrateAway).
type Replanner struct {
	cfg     ReplannerConfig
	tracker *HotTracker

	mu     sync.Mutex
	cancel context.CancelFunc
	done   chan struct{}
}

// NewReplanner creates a stopped replanner; StartContext begins ticking.
func NewReplanner(cfg ReplannerConfig) *Replanner {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	return &Replanner{cfg: cfg, tracker: NewHotTracker(cfg.Policy)}
}

// StartContext launches the scoring loop; cancelling ctx is equivalent
// to Stop (Stop still waits for the loop to exit).
func (r *Replanner) StartContext(ctx context.Context) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done != nil {
		return // already started
	}
	ctx, r.cancel = context.WithCancel(ctx)
	r.done = make(chan struct{})
	go r.loop(ctx, r.done)
}

// Stop terminates the loop and waits for it to exit. Safe to call on a
// never-started replanner.
func (r *Replanner) Stop() {
	r.mu.Lock()
	cancel, done := r.cancel, r.done
	r.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
}

// loop ticks until ctx is cancelled.
func (r *Replanner) loop(ctx context.Context, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(r.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.Tick()
		}
	}
}

// Tick runs one scoring pass. It is exported so tests and the
// observability smoke can drive the replanner deterministically without
// racing the wall-clock loop; the loop goroutine and external callers
// must not tick concurrently (the tracker is single-threaded by
// design — stop the loop first, or never start it).
func (r *Replanner) Tick() {
	obsReplanTicks.Inc()
	hotCount := 0
	for _, b := range r.cfg.Boxes() {
		if b.Dead {
			// The failure monitor owns dead boxes; a revived box
			// re-enters the state machine cold.
			r.tracker.Forget(b.ID)
			continue
		}
		var sig LoadSignal
		if r.cfg.Telemetry != nil {
			sig, _ = r.cfg.Telemetry.BoxSignal(b.ID)
		}
		hot, changed := r.tracker.Observe(b.ID, LoadUs(sig))
		if hot {
			hotCount++
		}
		if !changed {
			continue
		}
		r.cfg.Mark(b.ID, hot)
		if !hot {
			continue
		}
		if r.tracker.CoolingDown(b.ID) {
			obsReplanCooldownHolds.Inc()
			continue
		}
		if r.cfg.Migrate != nil {
			moved := r.cfg.Migrate(b.ID)
			obsReplanMigrations.Inc()
			obsReplanMigratedReqs.Add(int64(moved))
		}
		r.tracker.StartCooldown(b.ID)
	}
	r.tracker.sweep()
	obsReplanCongested.Set(int64(hotCount))
}
