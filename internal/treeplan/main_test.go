package treeplan_test

import (
	"testing"

	"netagg/internal/testutil"
)

// TestMain gates the suite on goroutine quiescence (see internal/testutil):
// planners are pure and must not leave anything running.
func TestMain(m *testing.M) { testutil.LeakCheckMain(m) }
