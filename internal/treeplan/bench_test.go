package treeplan_test

import (
	"fmt"
	"testing"

	"netagg/internal/cluster"
	"netagg/internal/treeplan"
)

// benchDeployment builds the paper's testbed shape at benchmark size:
// 4 racks of 8 workers in one pod, two boxes per ToR and at the pod
// aggregation switch.
func benchDeployment() (*cluster.Deployment, []string) {
	d := cluster.NewDeployment()
	d.AddHost(cluster.Host{Name: "master", Rack: 0, Pod: 0})
	var workers []string
	for r := 0; r < 4; r++ {
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("r%dh%d", r, i)
			d.AddHost(cluster.Host{Name: name, Rack: r, Pod: 0})
			workers = append(workers, name)
		}
	}
	id := uint64(1) << 32
	for _, sw := range []string{"tor:0", "tor:1", "tor:2", "tor:3", "agg:0"} {
		for k := 0; k < 2; k++ {
			d.AddBox(cluster.BoxInfo{ID: id, Addr: "10.0.0.1:1", Switch: sw})
			id += 1 << 32
		}
	}
	return d, workers
}

// benchPlan drives one planner over the benchmark deployment with a fresh
// request hash per iteration (plans are per-request work in the shims'
// submit and redirect paths).
func benchPlan(b *testing.B, p treeplan.Planner) {
	d, workers := benchDeployment()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := p.Plan(d, treeplan.NewRequest(uint64(i), 0, 0, "master", workers))
		if tree.Finals == 0 {
			b.Fatal("empty plan")
		}
	}
}

func BenchmarkPlanOnPath(b *testing.B)    { benchPlan(b, treeplan.OnPath{}) }
func BenchmarkPlanLoadAware(b *testing.B) { benchPlan(b, treeplan.LoadAware{Telemetry: benchTel()}) }

// benchTel gives every benchmark box a telemetry signal so LoadAware pays
// its full per-pick weighting cost.
func benchTel() treeplan.StaticTelemetry {
	tel := treeplan.StaticTelemetry{}
	for id := uint64(1) << 32; id <= 10<<32; id += 1 << 32 {
		tel[id] = treeplan.LoadSignal{QueueDepth: int64(id >> 32), FlushUs: 5000, RTTUs: 300}
	}
	return tel
}
