package treeplan_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"netagg/internal/cluster"
	"netagg/internal/topology"
	"netagg/internal/treeplan"
)

// randDeployment builds a random cluster deployment: 1-3 pods of 1-3 racks
// with 1-4 worker hosts each plus a master, boxes on a random subset of
// switches (0-3 per switch), and a random subset of boxes marked dead.
// Returns the deployment, the worker names, and the live box count.
func randDeployment(rn *rand.Rand) (*cluster.Deployment, []string) {
	d := cluster.NewDeployment()
	d.AddHost(cluster.Host{Name: "master", Rack: 0, Pod: 0})
	var workers []string
	pods := 1 + rn.Intn(3)
	rack := 0
	var switches []string
	for p := 0; p < pods; p++ {
		racks := 1 + rn.Intn(3)
		switches = append(switches, fmt.Sprintf("agg:%d", p))
		for r := 0; r < racks; r++ {
			switches = append(switches, fmt.Sprintf("tor:%d", rack))
			for i := 0; i < 1+rn.Intn(4); i++ {
				name := fmt.Sprintf("p%dr%dh%d", p, rack, i)
				d.AddHost(cluster.Host{Name: name, Rack: rack, Pod: p})
				workers = append(workers, name)
			}
			rack++
		}
	}
	switches = append(switches, "core")
	id := uint64(1) << 32
	for _, sw := range switches {
		for k := rn.Intn(4); k > 0; k-- {
			d.AddBox(cluster.BoxInfo{ID: id, Addr: fmt.Sprintf("10.0.0.%d:1", id>>32), Switch: sw})
			if rn.Intn(4) == 0 {
				d.MarkDead(id)
			}
			id += 1 << 32
		}
	}
	return d, workers
}

// randWorkers picks a random non-empty worker subset in deployment order.
func randWorkers(rn *rand.Rand, all []string) []string {
	var out []string
	for _, w := range all {
		if rn.Intn(3) > 0 {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		out = append(out, all[rn.Intn(len(all))])
	}
	return out
}

// oracleTree replays the pre-treeplan cluster.Deployment.Plan algorithm
// (git history: Chain + Plan) on the public deployment API and returns the
// per-worker box ID chains plus the expected fan-in and master final
// counts. OnPath must reproduce it exactly.
func oracleTree(d *cluster.Deployment, req uint64, tree int, master string, workers []string) (map[string][]uint64, map[uint64]int, int) {
	h := topology.FlowHash(0xC4A1, req, uint64(tree)+1)
	routes := make(map[string][]uint64)
	expect := make(map[uint64]int)
	finals := 0
	type edge struct{ up, down uint64 }
	boxEdges := make(map[edge]bool)
	roots := make(map[uint64]bool)
	for _, wname := range workers {
		var chain []uint64
		for _, sw := range d.PathSwitches(wname, master, h) {
			var alive []uint64
			for _, b := range d.BoxesAt(sw) {
				if !b.Dead {
					alive = append(alive, b.ID)
				}
			}
			if len(alive) == 0 {
				continue
			}
			chain = append(chain, alive[h%uint64(len(alive))])
		}
		routes[wname] = chain
		if len(chain) == 0 {
			finals++
			continue
		}
		expect[chain[0]]++
		for i := 0; i+1 < len(chain); i++ {
			boxEdges[edge{chain[i], chain[i+1]}] = true
		}
		roots[chain[len(chain)-1]] = true
	}
	for e := range boxEdges {
		expect[e.down]++
	}
	return routes, expect, finals + len(roots)
}

// routeIDs projects a planned tree's routes onto box IDs for comparison.
func routeIDs(t treeplan.Tree) map[string][]uint64 {
	out := make(map[string][]uint64, len(t.Routes))
	for w, chain := range t.Routes {
		ids := make([]uint64, 0, len(chain))
		for _, b := range chain {
			ids = append(ids, b.ID)
		}
		out[w] = ids
	}
	return out
}

// TestOnPathMatchesLegacyPlanOracle pins the refactor's behaviour
// contract: over randomized deployments, dead sets, and requests, OnPath
// plans exactly the trees the old cluster.Deployment.Plan computed.
func TestOnPathMatchesLegacyPlanOracle(t *testing.T) {
	rn := rand.New(rand.NewSource(0xC4A1))
	for trial := 0; trial < 200; trial++ {
		d, all := randDeployment(rn)
		workers := randWorkers(rn, all)
		req := rn.Uint64() >> 8
		tree := rn.Intn(4)
		wantRoutes, wantExpect, wantFinals := oracleTree(d, req, tree, "master", workers)

		got := treeplan.OnPath{}.Plan(d, treeplan.NewRequest(req, tree, 0, "master", workers))
		gotRoutes := routeIDs(got)
		for w, want := range wantRoutes {
			if gotv := gotRoutes[w]; !reflect.DeepEqual(append([]uint64{}, gotv...), append([]uint64{}, want...)) {
				t.Fatalf("trial %d: worker %s route = %v, oracle %v", trial, w, gotv, want)
			}
		}
		if len(gotRoutes) != len(wantRoutes) {
			t.Fatalf("trial %d: %d routes, oracle %d", trial, len(gotRoutes), len(wantRoutes))
		}
		if !reflect.DeepEqual(got.Expect, wantExpect) {
			t.Fatalf("trial %d: Expect = %v, oracle %v", trial, got.Expect, wantExpect)
		}
		if got.Finals != wantFinals {
			t.Fatalf("trial %d: Finals = %d, oracle %d", trial, got.Finals, wantFinals)
		}
	}
}

// planners returns the implementations the property tests quantify over:
// the paper's hash planner and LoadAware under a random telemetry view.
func planners(rn *rand.Rand) []treeplan.Planner {
	tel := treeplan.StaticTelemetry{}
	for id := uint64(1) << 32; id < 16<<32; id += 1 << 32 {
		if rn.Intn(2) == 0 {
			tel[id] = treeplan.LoadSignal{
				QueueDepth: int64(rn.Intn(1024)),
				FlushUs:    int64(rn.Intn(100000)),
				RTTUs:      int64(rn.Intn(10000)),
			}
		}
	}
	return []treeplan.Planner{treeplan.OnPath{}, treeplan.LoadAware{Telemetry: tel}}
}

// TestPlanConsistencyProperties checks, for every planner over randomized
// deployments, the tree accounting invariants the shims rely on: Expect
// totals equal the direct worker streams plus the distinct box-to-box
// edges, Finals equal the distinct chain roots plus the box-less workers,
// routes contain only live boxes, and planning is deterministic.
func TestPlanConsistencyProperties(t *testing.T) {
	rn := rand.New(rand.NewSource(0x7EE))
	for trial := 0; trial < 200; trial++ {
		d, all := randDeployment(rn)
		workers := randWorkers(rn, all)
		req := treeplan.NewRequest(rn.Uint64()>>8, rn.Intn(4), rn.Intn(3), "master", workers)
		for _, p := range planners(rn) {
			tree := p.Plan(d, req)
			if len(tree.Routes) != len(workers) {
				t.Fatalf("trial %d %s: %d routes for %d workers", trial, p.Name(), len(tree.Routes), len(workers))
			}

			type edge struct{ up, down uint64 }
			edges := make(map[edge]bool)
			roots := make(map[uint64]bool)
			directStreams, boxless := 0, 0
			for _, w := range workers {
				chain, ok := tree.Routes[w]
				if !ok {
					t.Fatalf("trial %d %s: no route for worker %s", trial, p.Name(), w)
				}
				for _, b := range chain {
					if b.Dead {
						t.Fatalf("trial %d %s: dead box %d planned for %s", trial, p.Name(), b.ID, w)
					}
				}
				if len(chain) == 0 {
					boxless++
					continue
				}
				directStreams++
				for i := 0; i+1 < len(chain); i++ {
					edges[edge{chain[i].ID, chain[i+1].ID}] = true
				}
				roots[chain[len(chain)-1].ID] = true
			}
			wantExpect := directStreams + len(edges)
			gotExpect := 0
			for _, n := range tree.Expect {
				gotExpect += n
			}
			if gotExpect != wantExpect {
				t.Fatalf("trial %d %s: Expect total %d, want %d direct + %d edges", trial, p.Name(), gotExpect, directStreams, len(edges))
			}
			if want := len(roots) + boxless; tree.Finals != want {
				t.Fatalf("trial %d %s: Finals %d, want %d roots + %d boxless", trial, p.Name(), tree.Finals, len(roots), boxless)
			}
			if again := p.Plan(d, req); !reflect.DeepEqual(tree, again) {
				t.Fatalf("trial %d %s: replanning produced a different tree", trial, p.Name())
			}
		}
	}
}

// TestPerWorkerDecomposability pins the contract worker shims depend on
// (§3.1, package doc): planning a single worker under the same request
// hash yields exactly the route the master's full plan assigned it.
func TestPerWorkerDecomposability(t *testing.T) {
	rn := rand.New(rand.NewSource(0xDEC0))
	for trial := 0; trial < 100; trial++ {
		d, all := randDeployment(rn)
		workers := randWorkers(rn, all)
		req := treeplan.NewRequest(rn.Uint64()>>8, rn.Intn(4), 0, "master", workers)
		for _, p := range planners(rn) {
			full := p.Plan(d, req)
			for _, w := range workers {
				solo := req
				solo.Workers = []string{w}
				got := p.Plan(d, solo).Routes[w]
				if !reflect.DeepEqual(got, full.Routes[w]) {
					t.Fatalf("trial %d %s: worker %s solo route %v != master route %v",
						trial, p.Name(), w, got, full.Routes[w])
				}
			}
		}
	}
}

// TestLoadAwareSteersOffHotBox checks the planner's purpose: with one hot
// and one cold box at a switch, the hot box's share of picks collapses
// while an idle fleet splits requests roughly evenly.
func TestLoadAwareSteersOffHotBox(t *testing.T) {
	d := cluster.NewDeployment()
	d.AddHost(cluster.Host{Name: "master", Rack: 0, Pod: 0})
	d.AddHost(cluster.Host{Name: "w", Rack: 0, Pod: 0})
	hotID, coldID := uint64(1)<<32, uint64(2)<<32
	d.AddBox(cluster.BoxInfo{ID: hotID, Addr: "10.0.0.1:1", Switch: "tor:0"})
	d.AddBox(cluster.BoxInfo{ID: coldID, Addr: "10.0.0.2:1", Switch: "tor:0"})

	count := func(p treeplan.Planner) (hot, cold int) {
		for req := uint64(0); req < 400; req++ {
			tree := p.Plan(d, treeplan.NewRequest(req, 0, 0, "master", []string{"w"}))
			switch tree.Routes["w"][0].ID {
			case hotID:
				hot++
			case coldID:
				cold++
			}
		}
		return
	}

	hot, cold := count(treeplan.LoadAware{Telemetry: treeplan.StaticTelemetry{
		hotID: {QueueDepth: 256},
	}})
	if hot+cold != 400 || hot > 60 {
		t.Fatalf("loaded fleet: hot box picked %d/400 times (cold %d), want a collapsed share", hot, cold)
	}
	idleHot, idleCold := count(treeplan.LoadAware{})
	if idleHot < 100 || idleCold < 100 {
		t.Fatalf("idle fleet: picks %d/%d, want a roughly even split", idleHot, idleCold)
	}
}

// TestRouteAddrs covers the wire-format helper the worker shims use.
func TestRouteAddrs(t *testing.T) {
	chain := []treeplan.Box{{ID: 1, Addr: "a:1"}, {ID: 2, Addr: "b:2"}}
	got := treeplan.RouteAddrs(chain, "m:9")
	if !reflect.DeepEqual(got, []string{"a:1", "b:2", "m:9"}) {
		t.Fatalf("RouteAddrs = %v", got)
	}
	if got := treeplan.RouteAddrs(nil, "m:9"); !reflect.DeepEqual(got, []string{"m:9"}) {
		t.Fatalf("RouteAddrs(nil) = %v", got)
	}
}

// TestTotalFinals covers the multi-tree fan-in helper the master uses.
func TestTotalFinals(t *testing.T) {
	trees := []treeplan.Tree{{Finals: 2}, {Finals: 0}, {Finals: 3}}
	if got := treeplan.TotalFinals(trees); got != 5 {
		t.Fatalf("TotalFinals = %d, want 5", got)
	}
}
