package treeplan

import (
	"math"
	"math/bits"
	"time"

	"netagg/internal/topology"
)

// LoadSignal is one box's load as the planner consumes it. The fields
// mirror the runtime metrics the deployment already exports (obs
// box.sched_queue_depth, box.flush_latency_us, cluster.hb_rtt_us); any
// subset may be zero when a signal is unavailable.
type LoadSignal struct {
	// QueueDepth is the box scheduler's pending task count.
	QueueDepth int64
	// FlushUs is a recent average of the box's request flush latency in
	// microseconds (arrival of the first partial to result emission).
	FlushUs int64
	// RTTUs is the failure monitor's heartbeat round-trip time to the
	// box in microseconds.
	RTTUs int64
}

// Telemetry supplies per-box load signals to LoadAware. Implementations
// must be safe for concurrent use; returning ok=false means "no signal",
// which LoadAware treats as an idle box.
type Telemetry interface {
	// BoxSignal returns the current load signal for a box ID.
	BoxSignal(id uint64) (LoadSignal, bool)
}

// StaticTelemetry is a fixed Telemetry for tests and simulations.
type StaticTelemetry map[uint64]LoadSignal

// BoxSignal implements Telemetry.
func (s StaticTelemetry) BoxSignal(id uint64) (LoadSignal, bool) {
	sig, ok := s[id]
	return sig, ok
}

// LoadAware plans the same path set as OnPath but chooses among the live
// boxes at each equipped switch by weighted rendezvous hashing: box i
// gets the key -wᵢ/ln(uᵢ), where uᵢ ∈ (0,1) is derived by hashing the box
// ID with the request hash and wᵢ = 1/(1+bucket(load)) shrinks as the
// box's telemetry worsens; the highest key wins. An idle fleet therefore
// spreads requests exactly as uniformly as rendezvous hashing, while a
// hot box's share of new trees drops roughly in proportion to its load —
// replans after failures or stragglers steer around hot boxes instead of
// re-hashing onto them.
//
// The load enters the weight only through its power-of-two bucket
// (bits.Len64), so shims whose telemetry views lag each other still
// compute identical plans unless a box's load crosses a power-of-two
// boundary between their reads; the divergence window is one straggler
// timeout, after which the master's redirect re-synchronises every shim
// on a freshly planned attempt (DESIGN.md §14).
type LoadAware struct {
	// Telemetry supplies the load signals; nil degrades to unweighted
	// rendezvous hashing (all boxes idle).
	Telemetry Telemetry
}

// Name implements Planner.
func (LoadAware) Name() string { return "loadaware" }

// Plan implements Planner.
func (l LoadAware) Plan(topo Topology, req Request) Tree {
	start := time.Now()
	t, deadSkipped, slowAvoided := plan(topo, req, func(_ string, alive []Box) Box {
		return l.pick(alive, req.Hash)
	})
	observePlan(start, req, deadSkipped, slowAvoided)
	return t
}

// pick runs the weighted rendezvous election among the live boxes at one
// switch. Ties (impossible in practice: keys are distinct reals) resolve
// to the lowest deployment index, keeping the choice deterministic.
func (l LoadAware) pick(alive []Box, hash uint64) Box {
	best := 0
	bestKey := math.Inf(-1)
	for i, b := range alive {
		key := -l.weight(b.ID) / math.Log(hashUnit(b.ID, hash))
		if key > bestKey {
			best, bestKey = i, key
		}
	}
	return alive[best]
}

// weight maps a box's telemetry to its rendezvous weight in (0, 1].
func (l LoadAware) weight(id uint64) float64 {
	if l.Telemetry == nil {
		return 1
	}
	sig, ok := l.Telemetry.BoxSignal(id)
	if !ok {
		return 1
	}
	return 1 / float64(1+loadBucket(sig))
}

// LoadUs folds a load signal into one scalar in microsecond-ish units:
// a queued task is costed at 1ms of backlog, flush latency and heartbeat
// RTT enter directly. LoadAware buckets it for weighting; the Replanner
// compares it against its hot/cold thresholds directly.
func LoadUs(sig LoadSignal) int64 {
	return sig.QueueDepth*1000 + sig.FlushUs + sig.RTTUs
}

// loadBucket quantises a load signal into its power-of-two bucket.
func loadBucket(sig LoadSignal) int {
	load := LoadUs(sig)
	if load <= 0 {
		return 0
	}
	return bits.Len64(uint64(load))
}

// hashUnit maps (box, request hash) to a uniform value in (0, 1) using
// the top 53 bits of the flow hash, offset so ln never sees 0 or 1.
func hashUnit(id, hash uint64) float64 {
	h := topology.FlowHash(0x10AD, id+1, hash)
	return (float64(h>>11) + 0.5) / float64(1<<53)
}
