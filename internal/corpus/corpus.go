// Package corpus generates the synthetic document collection that stands in
// for the paper's Wikipedia snapshot (§4.2.1): documents with Zipf-
// distributed vocabulary drawn from per-category term pools, so both
// full-text search (top-k / sample) and the CPU-intensive categorise
// aggregation function have realistic material to work on.
package corpus

import (
	"fmt"
	"strings"

	"netagg/internal/agg"
	"netagg/internal/stats"
)

// Config parameterises the generator.
type Config struct {
	// Seed makes the corpus reproducible.
	Seed int64
	// Docs is the number of documents to generate.
	Docs int
	// WordsPerDoc is the mean document length in words.
	WordsPerDoc int
	// VocabularySize is the number of distinct common words.
	VocabularySize int
	// ZipfS skews word frequencies (1.1 ≈ natural text).
	ZipfS float64
}

// DefaultConfig returns a small but non-trivial corpus configuration.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Docs:           2000,
		WordsPerDoc:    120,
		VocabularySize: 5000,
		ZipfS:          1.1,
	}
}

// Categories returns the base categories used by the categorise aggregation
// function, mirroring the paper's Wikipedia base categories.
func Categories() []agg.Category {
	return []agg.Category{
		{Name: "science", Terms: []string{"atom", "energy", "quantum", "theory", "experiment"}},
		{Name: "history", Terms: []string{"empire", "war", "century", "dynasty", "revolution"}},
		{Name: "sport", Terms: []string{"match", "team", "goal", "league", "champion"}},
		{Name: "arts", Terms: []string{"painting", "novel", "symphony", "gallery", "poem"}},
	}
}

// Document is one generated document.
type Document struct {
	ID    uint64
	Title string
	Text  string
	// Category is the dominant category seeded into the text, for checking
	// classification results.
	Category string
}

// Generate builds the corpus.
func Generate(cfg Config) []Document {
	if cfg.Docs <= 0 || cfg.WordsPerDoc <= 0 || cfg.VocabularySize <= 0 {
		panic(fmt.Sprintf("corpus: invalid config %+v", cfg))
	}
	rn := stats.NewRand(cfg.Seed)
	cats := Categories()
	vocab := make([]string, cfg.VocabularySize)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%04d", i)
	}

	docs := make([]Document, cfg.Docs)
	var sb strings.Builder
	for i := range docs {
		cat := cats[rn.Intn(len(cats))]
		sb.Reset()
		n := cfg.WordsPerDoc/2 + rn.Intn(cfg.WordsPerDoc)
		for wi := 0; wi < n; wi++ {
			if wi > 0 {
				sb.WriteByte(' ')
			}
			// Roughly one in eight words comes from the document's category
			// pool, so classification has a clear but noisy signal.
			if rn.Intn(8) == 0 {
				sb.WriteString(cat.Terms[rn.Intn(len(cat.Terms))])
			} else {
				sb.WriteString(vocab[rn.Zipf(len(vocab), cfg.ZipfS)])
			}
		}
		docs[i] = Document{
			ID:       uint64(i + 1),
			Title:    fmt.Sprintf("doc-%06d", i+1),
			Text:     sb.String(),
			Category: cat.Name,
		}
	}
	return docs
}

// Shard splits documents round-robin over n shards, the way the paper's
// backends each hold a portion of the index.
func Shard(docs []Document, n int) [][]Document {
	if n <= 0 {
		panic("corpus: shard count must be > 0")
	}
	shards := make([][]Document, n)
	for i, d := range docs {
		shards[i%n] = append(shards[i%n], d)
	}
	return shards
}

// QueryWords picks q random vocabulary words for a search query (§4.2.1:
// "each client continuously submits a query for three random words").
func QueryWords(rn *stats.Rand, vocabSize, q int) []string {
	out := make([]string, q)
	for i := range out {
		out[i] = fmt.Sprintf("w%04d", rn.Zipf(vocabSize, 1.1))
	}
	return out
}
