package corpus

import (
	"strings"
	"testing"

	"netagg/internal/stats"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if len(a) != len(b) {
		t.Fatal("same config must give same corpus size")
	}
	for i := range a {
		if a[i].Text != b[i].Text || a[i].Category != b[i].Category {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	cfg := Config{Seed: 2, Docs: 500, WordsPerDoc: 80, VocabularySize: 300, ZipfS: 1.1}
	docs := Generate(cfg)
	if len(docs) != 500 {
		t.Fatalf("docs = %d", len(docs))
	}
	ids := map[uint64]bool{}
	cats := map[string]int{}
	for _, d := range docs {
		if ids[d.ID] {
			t.Fatalf("duplicate ID %d", d.ID)
		}
		ids[d.ID] = true
		cats[d.Category]++
		n := len(strings.Fields(d.Text))
		if n < cfg.WordsPerDoc/2 || n > cfg.WordsPerDoc*2 {
			t.Fatalf("doc length %d out of range", n)
		}
	}
	if len(cats) != len(Categories()) {
		t.Fatalf("only %d categories used", len(cats))
	}
}

func TestCategorySignalPresent(t *testing.T) {
	docs := Generate(Config{Seed: 3, Docs: 200, WordsPerDoc: 120, VocabularySize: 400, ZipfS: 1.1})
	catTerms := map[string][]string{}
	for _, c := range Categories() {
		catTerms[c.Name] = c.Terms
	}
	withSignal := 0
	for _, d := range docs {
		for _, term := range catTerms[d.Category] {
			if strings.Contains(d.Text, term) {
				withSignal++
				break
			}
		}
	}
	if frac := float64(withSignal) / float64(len(docs)); frac < 0.9 {
		t.Fatalf("only %.2f of docs carry their category's terms", frac)
	}
}

func TestShardBalanced(t *testing.T) {
	docs := Generate(Config{Seed: 1, Docs: 100, WordsPerDoc: 10, VocabularySize: 50, ZipfS: 1.1})
	shards := Shard(docs, 7)
	if len(shards) != 7 {
		t.Fatalf("shards = %d", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += len(s)
		if len(s) < 100/7 || len(s) > 100/7+1 {
			t.Fatalf("unbalanced shard: %d docs", len(s))
		}
	}
	if total != 100 {
		t.Fatalf("lost documents: %d", total)
	}
}

func TestShardPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Shard(nil, 0)
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Config{Docs: 0})
}

func TestQueryWordsInVocabulary(t *testing.T) {
	rn := stats.NewRand(4)
	for i := 0; i < 100; i++ {
		words := QueryWords(rn, 300, 3)
		if len(words) != 3 {
			t.Fatalf("got %d words", len(words))
		}
		for _, w := range words {
			if !strings.HasPrefix(w, "w0") && !strings.HasPrefix(w, "w1") && !strings.HasPrefix(w, "w2") {
				t.Fatalf("word %q not from the vocabulary format", w)
			}
		}
	}
}
