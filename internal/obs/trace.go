package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one hop of an aggregation request through the fabric: the
// worker shim's send, one agg box's receive→aggregate→emit, or the
// master shim's collection. Timestamps are unix nanoseconds so spans
// recorded by different components order globally within the process.
type Span struct {
	// Hop names the fabric layer: "shim.send", "box", "master".
	Hop string `json:"hop"`
	// Node identifies the component ("r0-h1", "box:4294967296",
	// "master").
	Node string `json:"node"`
	// Start is when the hop first touched the request (first frame in,
	// send started, request submitted).
	Start int64 `json:"start_ns"`
	// Agg is when aggregation finished on this hop (boxes only; zero
	// elsewhere).
	Agg int64 `json:"agg_ns,omitempty"`
	// End is when the hop emitted its output (send complete, result
	// forwarded, request completed).
	End int64 `json:"end_ns"`
	// Parts counts the partial results this hop consumed (fan-in) or
	// produced.
	Parts int `json:"parts"`
	// BytesIn and BytesOut measure the hop's traffic reduction: their
	// ratio is the observed aggregation ratio α at this hop (§4.1).
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"` // BytesOut the hop emitted downstream.
}

// Duration returns the hop's wall-clock time.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Trace collects the spans of one wire-level aggregation request (one
// (request, tree, attempt) triple, see cluster.WireReq). Spans arrive
// in completion order, not tree order; Sorted returns them by start
// time.
type Trace struct {
	// Req is the wire request id the spans were recorded under.
	Req uint64 `json:"req"`
	// App names the application whose aggregation function ran.
	App string `json:"app"`
	// First is the earliest span start (unix nanoseconds).
	First int64 `json:"first_ns"`
	// Done marks traces completed by the master shim; traces evicted
	// from the active set by capacity pressure stay not-done.
	Done bool `json:"done"`
	// Spans are the recorded hops, in arrival order, capped at
	// maxSpansPerTrace; Dropped counts spans discarded past the cap
	// (only reachable when wire request ids are recycled).
	Spans   []Span `json:"spans"`
	Dropped int    `json:"dropped,omitempty"` // Dropped spans past the cap.
}

// maxSpansPerTrace bounds one trace's memory. A legitimate request has
// one span per worker plus one per on-path box plus the master — far
// below this — so hitting the cap means request ids are being reused
// across jobs and the tail is noise anyway.
const maxSpansPerTrace = 512

// Sorted returns the spans ordered by start time (ties: by hop then
// node, so the order is deterministic).
func (t Trace) Sorted() []Span {
	out := append([]Span(nil), t.Spans...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Hop != b.Hop {
			return a.Hop < b.Hop
		}
		return a.Node < b.Node
	})
	return out
}

// Tracer keeps a bounded set of active traces plus a ring buffer of
// recently completed ones. Recording is mutex-guarded (hops are
// per-request events, orders of magnitude rarer than the per-frame
// counter path, so a lock is fine here). When the active set is full
// the oldest active trace is evicted into the ring, so an aggbox whose
// master never reports completion still retains its recent history.
type Tracer struct {
	mu        sync.Mutex
	maxActive int
	ringSize  int
	active    map[uint64]*Trace
	order     []uint64 // active trace keys, oldest first
	ring      []*Trace // completed/evicted traces, oldest first
}

// NewTracer returns a tracer bounding the active set and completed ring
// to the given sizes (values < 1 default to 256).
func NewTracer(maxActive, ring int) *Tracer {
	if maxActive < 1 {
		maxActive = 256
	}
	if ring < 1 {
		ring = 256
	}
	return &Tracer{
		maxActive: maxActive,
		ringSize:  ring,
		active:    make(map[uint64]*Trace),
	}
}

// DefaultTracer is the process-wide tracer every instrumented layer
// records into.
var DefaultTracer = NewTracer(256, 256)

// Record appends one span to the request's trace, creating the trace on
// first use.
func (t *Tracer) Record(req uint64, app string, s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recordLocked(req, app, s)
}

// Finish appends the final span and moves the trace to the completed
// ring (the master shim calls it when a request completes).
func (t *Tracer) Finish(req uint64, app string, s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.recordLocked(req, app, s)
	tr.Done = true
	if _, wasActive := t.active[req]; !wasActive {
		return // recordLocked merged into a ring entry; it is already there
	}
	delete(t.active, req)
	for i, k := range t.order {
		if k == req {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	t.pushRingLocked(tr)
}

func (t *Tracer) recordLocked(req uint64, app string, s Span) *Trace {
	tr, ok := t.active[req]
	if !ok {
		// A hop can report after the master already finished the trace
		// (boxes record their span once the emit completes, and the
		// master may win that race): merge into the completed ring
		// entry instead of opening a spurious new trace.
		for i := len(t.ring) - 1; i >= 0; i-- {
			if t.ring[i].Req == req {
				tr = t.ring[i]
				ok = true
				break
			}
		}
	}
	if !ok {
		if len(t.active) >= t.maxActive {
			oldest := t.order[0]
			t.order = t.order[1:]
			t.pushRingLocked(t.active[oldest])
			delete(t.active, oldest)
		}
		tr = &Trace{Req: req, App: app, First: s.Start}
		t.active[req] = tr
		t.order = append(t.order, req)
	}
	if tr.First == 0 || (s.Start != 0 && s.Start < tr.First) {
		tr.First = s.Start
	}
	if len(tr.Spans) >= maxSpansPerTrace {
		tr.Dropped++
		return tr
	}
	tr.Spans = append(tr.Spans, s)
	return tr
}

// copyTrace deep-copies a trace so callers can read it after the lock
// is released while recording goroutines keep appending spans.
func copyTrace(tr *Trace) Trace {
	out := *tr
	out.Spans = append([]Span(nil), tr.Spans...)
	return out
}

func (t *Tracer) pushRingLocked(tr *Trace) {
	t.ring = append(t.ring, tr)
	if len(t.ring) > t.ringSize {
		t.ring = append(t.ring[:0], t.ring[len(t.ring)-t.ringSize:]...)
	}
}

// Lookup returns a copy of the request's trace, searching the active
// set first and then the completed ring (newest match wins).
func (t *Tracer) Lookup(req uint64) (Trace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr, ok := t.active[req]; ok {
		return copyTrace(tr), true
	}
	for i := len(t.ring) - 1; i >= 0; i-- {
		if t.ring[i].Req == req {
			return copyTrace(t.ring[i]), true
		}
	}
	return Trace{}, false
}

// Recent returns up to n completed traces, newest first (n < 1 returns
// all).
func (t *Tracer) Recent(n int) []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 1 || n > len(t.ring) {
		n = len(t.ring)
	}
	out := make([]Trace, 0, n)
	for i := len(t.ring) - 1; i >= len(t.ring)-n; i-- {
		out = append(out, copyTrace(t.ring[i]))
	}
	return out
}

// Active returns a copy of every in-flight (not yet completed) trace,
// oldest first.
func (t *Tracer) Active() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.order))
	for _, k := range t.order {
		out = append(out, copyTrace(t.active[k]))
	}
	return out
}

// SumBytesOut totals the BytesOut of the request's spans whose hop
// matches. The master shim uses it to compute the observed per-job
// aggregation ratio α = master bytes in / shim bytes out; in a
// multi-process deployment the shim spans live in other processes and
// the sum is 0, which callers treat as "α unobservable".
func (t *Tracer) SumBytesOut(req uint64, hop string) int64 {
	tr, ok := t.Lookup(req)
	if !ok {
		return 0
	}
	var sum int64
	for _, s := range tr.Spans {
		if s.Hop == hop {
			sum += s.BytesOut
		}
	}
	return sum
}

// TraceLog renders every trace the tracer holds (active then completed,
// oldest first) as an indented text log, one line per span with
// relative-to-trace-start timing — the quickest way to see where a slow
// request spent its time.
func (t *Tracer) TraceLog() string {
	var b strings.Builder
	for _, tr := range append(t.Active(), reverse(t.Recent(0))...) {
		writeTrace(&b, tr)
	}
	return b.String()
}

func reverse(ts []Trace) []Trace {
	for i, j := 0, len(ts)-1; i < j; i, j = i+1, j-1 {
		ts[i], ts[j] = ts[j], ts[i]
	}
	return ts
}

func writeTrace(b *strings.Builder, tr Trace) {
	state := "active"
	if tr.Done {
		state = "done"
	}
	fmt.Fprintf(b, "trace req=%d app=%s spans=%d %s\n", tr.Req, tr.App, len(tr.Spans), state)
	for _, s := range tr.Sorted() {
		rel := time.Duration(s.Start - tr.First).Round(time.Microsecond)
		fmt.Fprintf(b, "  +%-12v %-10s %-16s parts=%-4d in=%-8d out=%-8d took=%v\n",
			rel, s.Hop, s.Node, s.Parts, s.BytesIn, s.BytesOut,
			s.Duration().Round(time.Microsecond))
	}
}
