package obs

import (
	"testing"

	"netagg/internal/testutil"
)

func TestMain(m *testing.M) { testutil.LeakCheckMain(m) }
