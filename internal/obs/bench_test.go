package obs

import "testing"

// BenchmarkObsCounter measures the per-event cost of the counter hot
// path; ReportAllocs enforces the package's 0 allocs/op claim
// (DESIGN.md §11 quotes these numbers as the instrumentation overhead).
func BenchmarkObsCounter(b *testing.B) {
	c := NewRegistry().Counter("bench.count")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsHistogram measures Observe: two atomic adds, one bucket
// add, and the min/max CAS loops.
func BenchmarkObsHistogram(b *testing.B) {
	h := NewRegistry().Histogram("bench.lat")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xFFFF))
	}
}

// BenchmarkObsCounterParallel measures contended counters — the shape
// the transport layer produces with many reader goroutines bumping the
// same frames_in counter.
func BenchmarkObsCounterParallel(b *testing.B) {
	c := NewRegistry().Counter("bench.count")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
