// Package obs is the runtime observability layer of the NetAgg data
// plane: a concurrent metrics registry (counters, gauges, power-of-two
// bucket histograms), lightweight per-request tracing keyed by the wire
// request id, and the /debug/netagg HTTP endpoint that exposes both.
//
// The paper's evaluation (§5) is built on per-hop visibility — traffic
// reduction at every tree level (Fig 16), per-box aggregation cost
// (Figs 21-24), failure-detection latency (§3.1) — and this package is
// the live counterpart of those offline measurements: every layer of
// the fabric (transport, core, shim, cluster) feeds the default
// registry, so a running deployment can answer "what is my aggregation
// tree doing right now".
//
// Design constraints:
//
//   - Dependency-free: stdlib only (plus the repo's own table renderer).
//   - Allocation-free hot path: Counter.Add, Gauge.Set/Add and
//     Histogram.Observe perform only atomic operations, enforced by
//     BenchmarkObsCounter/BenchmarkObsHistogram and a testing.AllocsPerRun
//     regression test. Handles are resolved once (package-level vars in
//     the instrumented packages), never per event.
//   - Single process, no labels: a registry aggregates over all boxes or
//     shims sharing the process, which matches both the standalone
//     aggbox daemon (one box per process) and the in-process testbed
//     (whole-deployment totals, the granularity of Figs 15-20).
package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"netagg/internal/metrics"
)

// Counter is a monotonically increasing metric (frames forwarded,
// requests completed). The zero value is invalid; obtain counters from a
// Registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Allocation-free.
//
//netagg:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one. Allocation-free.
//
//netagg:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (open connections, scheduler queue
// depth). The zero value is invalid; obtain gauges from a Registry.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. Allocation-free.
//
//netagg:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease). Allocation-free.
//
//netagg:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of histogram buckets: bucket 0 holds the
// value 0, bucket i (1 ≤ i ≤ 64) holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a fixed power-of-two bucket histogram for latencies and
// sizes. Observing is a handful of atomic operations — no locks, no
// allocation — at the cost of bucket-resolution percentiles (exact to a
// factor of two, which is enough to tell a 100 µs flush from a 10 ms
// one). The zero value is invalid; obtain histograms from a Registry.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // initialised to MaxInt64 by the registry
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values are clamped to zero.
// Allocation-free.
//
//netagg:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// snapshot copies the histogram into an immutable view.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if min := h.min.Load(); min != math.MaxInt64 {
		s.Min = min
	}
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	s.P50 = quantile(&counts, s.Count, 0.50)
	s.P90 = quantile(&counts, s.Count, 0.90)
	s.P99 = quantile(&counts, s.Count, 0.99)
	return s
}

// quantile returns the upper bound of the bucket containing the q-th
// sample — a value ≥ the true quantile by at most 2×.
func quantile(counts *[histBuckets]int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			return int64(1)<<uint(i) - 1
		}
	}
	return math.MaxInt64 // unreachable while counts sum to total
}

// HistogramSnapshot is a point-in-time view of a histogram. Percentiles
// are bucket upper bounds (exact to a factor of two).
type HistogramSnapshot struct {
	// Count and Sum aggregate all observations.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"` // Sum of all observed values.
	// Min and Max are the exact extreme observations (0 when empty).
	Min int64 `json:"min"`
	Max int64 `json:"max"` // Max observed value.
	// P50, P90 and P99 are quantile estimates (bucket upper bounds).
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"` // P90 quantile estimate.
	P99 int64 `json:"p99"` // P99 quantile estimate.
}

// Mean returns the arithmetic mean of the observed values.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry is a concurrent metric namespace. Metric handles are created
// on first use and live for the registry's lifetime; lookups take a
// mutex (setup path), updates through the returned handles are
// lock-free (hot path). Metric names are dot-separated
// "<layer>.<metric>[_<unit>]", e.g. "transport.bytes_out",
// "cluster.hb_rtt_us" — see the catalogue in DESIGN.md §11.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every instrumented layer feeds.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		h.min.Store(math.MaxInt64)
		r.hists[name] = h
	}
	return h
}

// C returns a counter on the Default registry (instrumentation shorthand).
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge on the Default registry (instrumentation shorthand).
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram on the Default registry (instrumentation
// shorthand).
func H(name string) *Histogram { return Default.Histogram(name) }

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	// Counters and Gauges map metric name to current value.
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"` // Gauges by name.
	// Histograms maps metric name to its distribution summary.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. Values are read without
// stopping writers, so counters read during a burst may be mutually
// inconsistent by a few events — fine for monitoring, by design.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// WriteJSON writes the registry's snapshot as one expvar-style JSON
// object. Map keys are emitted sorted (encoding/json), so the output is
// diffable.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Table renders the registry as an aligned text table (the same
// renderer every figure harness uses), one row per metric sorted by
// name. Histogram rows carry count/mean/percentiles; counter and gauge
// rows carry the value.
func (r *Registry) Table() *metrics.Table {
	s := r.Snapshot()
	t := metrics.NewTable("netagg metrics", "metric", "type", "value", "count", "mean", "p50", "p90", "p99", "max")
	type row struct {
		name, kind string
	}
	var rows []row
	for name := range s.Counters {
		rows = append(rows, row{name, "counter"})
	}
	for name := range s.Gauges {
		rows = append(rows, row{name, "gauge"})
	}
	for name := range s.Histograms {
		rows = append(rows, row{name, "histogram"})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, rw := range rows {
		switch rw.kind {
		case "counter":
			t.AddRow(rw.name, rw.kind, s.Counters[rw.name], "", "", "", "", "", "")
		case "gauge":
			t.AddRow(rw.name, rw.kind, s.Gauges[rw.name], "", "", "", "", "", "")
		case "histogram":
			h := s.Histograms[rw.name]
			t.AddRow(rw.name, rw.kind, "", h.Count, h.Mean(), h.P50, h.P90, h.P99, h.Max)
		}
	}
	return t
}
