package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// HealthFunc supplies component-specific health details merged into the
// /debug/netagg/health response (box stats, deployment liveness, …).
// It must be safe for concurrent use. May be nil.
type HealthFunc func() map[string]interface{}

// processStart anchors the uptime reported by the health endpoint.
var processStart = time.Now()

// Handler serves the live introspection endpoint:
//
//	/debug/netagg/metrics   registry snapshot (JSON; ?format=table for text)
//	/debug/netagg/traces    recent traces (JSON; ?format=text for TraceLog)
//	/debug/netagg/health    liveness + HealthFunc details (JSON)
//	/debug/pprof/...        the standard pprof handlers
//
// reg/tr default to Default/DefaultTracer when nil, so
// Handler(nil, nil, nil) exposes everything the process recorded.
func Handler(reg *Registry, tr *Tracer, health HealthFunc) http.Handler {
	if reg == nil {
		reg = Default
	}
	if tr == nil {
		tr = DefaultTracer
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/netagg/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "table" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(reg.Table().String()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/netagg/traces", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(tr.TraceLog()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Active []Trace `json:"active"`
			Recent []Trace `json:"recent"`
		}{Active: tr.Active(), Recent: tr.Recent(0)})
	})
	mux.HandleFunc("/debug/netagg/health", func(w http.ResponseWriter, r *http.Request) {
		resp := map[string]interface{}{
			"status":     "ok",
			"uptime_s":   time.Since(processStart).Seconds(),
			"goroutines": runtime.NumGoroutine(),
		}
		if health != nil {
			for k, v := range health() {
				resp[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve mounts h (nil = Handler(nil, nil, nil)) on addr (":0" picks a
// free port) and serves until ctx is cancelled or the returned stop
// function runs. It returns the bound address. The stop function drains
// the server and is idempotent.
func Serve(ctx context.Context, addr string, h http.Handler) (string, func(), error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if h == nil {
		h = Handler(nil, nil, nil)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	served := make(chan struct{})
	go func() {
		_ = srv.Serve(ln)
		close(served)
	}()
	stopCtx, cancel := context.WithCancel(ctx)
	stopped := make(chan struct{})
	go func() {
		<-stopCtx.Done()
		// The graceful-shutdown deadline must not derive from the parent
		// context: it only runs after that context is already cancelled,
		// and deriving from it would abort the drain immediately.
		//lint:ignore ctxflow shutdown grace period starts after the parent ctx is cancelled; deriving from it would skip the drain
		shCtx, shCancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(shCtx)
		shCancel()
		<-served
		close(stopped)
	}()
	stop := func() {
		cancel()
		<-stopped
	}
	return ln.Addr().String(), stop, nil
}
