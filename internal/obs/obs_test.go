package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"netagg/internal/testutil"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("x.depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Handles are stable: the same name returns the same metric.
	if r.Counter("x.count") != c || r.Gauge("x.depth") != g {
		t.Fatal("registry handles must be stable per name")
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.lat")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum = %d", s.Sum)
	}
	// Power-of-two buckets: a quantile estimate is the bucket upper
	// bound, so it is ≥ the true value and < 2× it.
	if s.P50 < 500 || s.P50 >= 1024 {
		t.Fatalf("p50 = %d, want within [500, 1024)", s.P50)
	}
	if s.P99 < 990 || s.P99 >= 2048 {
		t.Fatalf("p99 = %d, want within [990, 2048)", s.P99)
	}
	if m := s.Mean(); math.Abs(m-500.5) > 0.01 {
		t.Fatalf("mean = %v, want 500.5", m)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.lat")
	if s := h.snapshot(); s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	h.Observe(-5) // clamped to the 0 bucket, not a panic
	h.Observe(0)
	s := h.snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Fatalf("min/max/sum = %d/%d/%d, want 0/0/0 (negatives clamp)", s.Min, s.Max, s.Sum)
	}
}

// TestRegistryConcurrency hammers one registry from parallel writers
// while readers snapshot it; the -race build is the assertion (plus a
// final exact count: increments must not be lost).
func TestRegistryConcurrency(t *testing.T) {
	defer testutil.CheckLeaks(t)
	r := NewRegistry()
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Snapshot()
			_ = r.Table().String()
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c.shared")
			g := r.Gauge("g.shared")
			h := r.Histogram("h.shared")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
				// Lookups race against creation too.
				r.Counter(fmt.Sprintf("c.%d", w)).Inc()
			}
		}(w)
	}
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	// Writers finish fast; the reader needs the stop signal.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case <-wgDone:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrency test wedged")
	}
	s := r.Snapshot()
	if s.Counters["c.shared"] != writers*perWriter {
		t.Fatalf("lost counter increments: %d, want %d", s.Counters["c.shared"], writers*perWriter)
	}
	if s.Gauges["g.shared"] != writers*perWriter {
		t.Fatalf("lost gauge adds: %d", s.Gauges["g.shared"])
	}
	if s.Histograms["h.shared"].Count != writers*perWriter {
		t.Fatalf("lost observations: %d", s.Histograms["h.shared"].Count)
	}
}

// TestHotPathAllocationFree is the 0 allocs/op regression the package
// doc promises (the benchmarks prove it too, but this fails `go test`
// rather than needing a benchmark run).
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.c")
	g := r.Gauge("x.g")
	h := r.Histogram("x.h")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
		h.Observe(12345)
	}); n != 0 {
		t.Fatalf("hot path allocates %v allocs/op, want 0", n)
	}
}

func TestJSONExportDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.Histogram("c.three").Observe(8)
	var first strings.Builder
	if err := r.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	var second strings.Builder
	if err := r.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("JSON export must be deterministic")
	}
	var parsed Snapshot
	if err := json.Unmarshal([]byte(first.String()), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if parsed.Counters["a.one"] != 1 || parsed.Counters["b.two"] != 2 {
		t.Fatalf("round trip lost counters: %+v", parsed.Counters)
	}
}

func TestTableRendersAllKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Gauge("a.depth").Set(2)
	r.Histogram("a.lat").Observe(100)
	out := r.Table().String()
	for _, want := range []string{"a.count", "a.depth", "a.lat", "counter", "gauge", "histogram"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTracerRecordFinishLookup(t *testing.T) {
	tr := NewTracer(4, 4)
	tr.Record(10, "wc", Span{Hop: "shim.send", Node: "w0", Start: 100, End: 200, BytesOut: 50})
	tr.Record(10, "wc", Span{Hop: "box", Node: "box:1", Start: 150, Agg: 180, End: 220})
	got, ok := tr.Lookup(10)
	if !ok || len(got.Spans) != 2 || got.Done {
		t.Fatalf("active lookup = %+v, %v", got, ok)
	}
	if got.First != 100 {
		t.Fatalf("First = %d, want 100", got.First)
	}
	if len(tr.Active()) != 1 {
		t.Fatal("want one active trace")
	}
	tr.Finish(10, "wc", Span{Hop: "master", Node: "m", Start: 90, End: 300})
	if len(tr.Active()) != 0 {
		t.Fatal("finish must clear the active set")
	}
	got, ok = tr.Lookup(10)
	if !ok || !got.Done || len(got.Spans) != 3 {
		t.Fatalf("ring lookup = %+v, %v", got, ok)
	}
	// First tracks the earliest span start even when it arrives last.
	if got.First != 90 {
		t.Fatalf("First = %d, want 90", got.First)
	}
	recent := tr.Recent(0)
	if len(recent) != 1 || recent[0].Req != 10 {
		t.Fatalf("recent = %+v", recent)
	}
}

func TestTracerEvictionBounds(t *testing.T) {
	tr := NewTracer(2, 3)
	for req := uint64(1); req <= 5; req++ {
		tr.Record(req, "wc", Span{Hop: "box", Start: int64(req)})
	}
	// Capacity 2: reqs 1-3 were evicted into the ring, 4 and 5 active.
	if got := len(tr.Active()); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	if _, ok := tr.Lookup(1); !ok {
		t.Fatal("evicted trace must remain findable in the ring")
	}
	for req := uint64(6); req <= 12; req++ {
		tr.Record(req, "wc", Span{Hop: "box", Start: int64(req)})
	}
	// The ring holds at most 3; the oldest evictions are gone for good.
	if _, ok := tr.Lookup(1); ok {
		t.Fatal("ring must be bounded")
	}
	if got := tr.Recent(0); len(got) != 3 {
		t.Fatalf("ring size = %d, want 3", len(got))
	}
}

func TestTracerSortedAndSumBytes(t *testing.T) {
	tr := NewTracer(4, 4)
	tr.Record(1, "wc", Span{Hop: "box", Node: "b", Start: 300, End: 400})
	tr.Record(1, "wc", Span{Hop: "shim.send", Node: "w1", Start: 100, End: 150, BytesOut: 30})
	tr.Record(1, "wc", Span{Hop: "shim.send", Node: "w0", Start: 100, End: 160, BytesOut: 20})
	got, _ := tr.Lookup(1)
	sorted := got.Sorted()
	if sorted[0].Node != "w0" || sorted[1].Node != "w1" || sorted[2].Hop != "box" {
		t.Fatalf("sorted order wrong: %+v", sorted)
	}
	if sum := tr.SumBytesOut(1, "shim.send"); sum != 50 {
		t.Fatalf("SumBytesOut = %d, want 50", sum)
	}
	if sum := tr.SumBytesOut(99, "shim.send"); sum != 0 {
		t.Fatalf("unknown req SumBytesOut = %d, want 0", sum)
	}
}

func TestTracerConcurrency(t *testing.T) {
	defer testutil.CheckLeaks(t)
	tr := NewTracer(16, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				req := uint64(w*1000 + i)
				tr.Record(req, "wc", Span{Hop: "box", Start: int64(i)})
				if i%8 == 0 {
					tr.Finish(req, "wc", Span{Hop: "master", Start: int64(i)})
				}
				_, _ = tr.Lookup(req)
				if i%64 == 0 {
					_ = tr.TraceLog()
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("tracer concurrency test wedged")
	}
}

func TestTraceLogFormat(t *testing.T) {
	tr := NewTracer(4, 4)
	base := time.Now().UnixNano()
	tr.Record(42, "wc", Span{Hop: "shim.send", Node: "w0", Start: base, End: base + 1000, Parts: 2, BytesOut: 64})
	tr.Finish(42, "wc", Span{Hop: "master", Node: "m", Start: base, End: base + 5000, Parts: 1, BytesIn: 16})
	out := tr.TraceLog()
	for _, want := range []string{"req=42", "app=wc", "done", "shim.send", "master", "parts=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace log missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	defer testutil.CheckLeaks(t)
	reg := NewRegistry()
	reg.Counter("h.test").Add(7)
	tr := NewTracer(4, 4)
	tr.Finish(3, "wc", Span{Hop: "master", Node: "m", Start: 1, End: 2})
	health := func() map[string]interface{} {
		return map[string]interface{}{"boxes": 3}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, stop, err := Serve(ctx, "127.0.0.1:0", Handler(reg, tr, health))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/netagg/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if snap.Counters["h.test"] != 7 {
		t.Fatalf("metrics lost counter: %+v", snap.Counters)
	}
	if _, body = get("/debug/netagg/metrics?format=table"); !strings.Contains(body, "h.test") {
		t.Fatalf("table export missing metric:\n%s", body)
	}

	code, body = get("/debug/netagg/traces")
	if code != http.StatusOK {
		t.Fatalf("traces status %d", code)
	}
	var traces struct {
		Active []Trace `json:"active"`
		Recent []Trace `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("traces not JSON: %v", err)
	}
	if len(traces.Recent) != 1 || traces.Recent[0].Req != 3 {
		t.Fatalf("traces = %+v", traces)
	}
	if _, body = get("/debug/netagg/traces?format=text"); !strings.Contains(body, "req=3") {
		t.Fatalf("text traces missing req:\n%s", body)
	}

	code, body = get("/debug/netagg/health")
	if code != http.StatusOK {
		t.Fatalf("health status %d", code)
	}
	var h map[string]interface{}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("health not JSON: %v", err)
	}
	if h["status"] != "ok" || h["boxes"] != float64(3) {
		t.Fatalf("health = %+v", h)
	}

	if code, _ = get("/debug/netagg/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

func TestServeStopIdempotentAndCtxCancel(t *testing.T) {
	defer testutil.CheckLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	addr, stop, err := Serve(ctx, "127.0.0.1:0", Handler(NewRegistry(), NewTracer(1, 1), nil))
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		t.Fatal("Serve must report the bound address")
	}
	cancel() // context cancellation alone must shut the server down
	stop()
	stop() // and stop must be safe to call again
}

// TestTracerLateRecordMergesIntoRing covers the box-vs-master race: a
// hop that reports after the master finished the trace must land in
// the completed ring entry, not open a spurious active trace.
func TestTracerLateRecordMergesIntoRing(t *testing.T) {
	tr := NewTracer(4, 4)
	tr.Record(5, "wc", Span{Hop: "shim.send", Node: "w0", Start: 10, End: 20})
	tr.Finish(5, "wc", Span{Hop: "master", Node: "m", Start: 5, End: 40})
	// The box's deferred record arrives after Finish.
	tr.Record(5, "wc", Span{Hop: "box", Node: "box:1", Start: 12, End: 30})
	if n := len(tr.Active()); n != 0 {
		t.Fatalf("late record opened %d active traces, want 0", n)
	}
	got, ok := tr.Lookup(5)
	if !ok || !got.Done || len(got.Spans) != 3 {
		t.Fatalf("merged trace = %+v, %v", got, ok)
	}
	// A late Finish on the merged trace must not duplicate it in the ring.
	tr.Finish(5, "wc", Span{Hop: "master", Node: "m2", Start: 6, End: 41})
	if n := len(tr.Recent(0)); n != 1 {
		t.Fatalf("ring holds %d copies of the trace, want 1", n)
	}
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer(4, 4)
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tr.Record(1, "wc", Span{Hop: "box", Start: int64(i + 1)})
	}
	got, _ := tr.Lookup(1)
	if len(got.Spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want cap %d", len(got.Spans), maxSpansPerTrace)
	}
	if got.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", got.Dropped)
	}
}
