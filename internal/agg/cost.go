package agg

import "time"

// VirtualCost wraps an aggregator with an emulated, size-proportional
// processing cost. The paper's CPU-intensive functions (categorise) were
// evaluated on 16-core servers; this repository's reference host exposes a
// single CPU, so real spinning cannot show parallel scaling. Sleeping for a
// duration proportional to the merged input instead keeps per-task cost and
// the scheduler's contention structure faithful while letting pool-size
// scaling (Figs 15, 20, 21) remain observable. The substitution is recorded
// in DESIGN.md.
type VirtualCost struct {
	// Inner performs the actual aggregation.
	Inner Aggregator
	// PerKB is the emulated processing time per kilobyte of combined input.
	PerKB time.Duration
}

// Name implements Aggregator.
func (v VirtualCost) Name() string { return v.Inner.Name() + "+cost" }

// Combine implements Aggregator.
func (v VirtualCost) Combine(a, b []byte) ([]byte, error) {
	if v.PerKB > 0 {
		time.Sleep(time.Duration(float64(len(a)+len(b)) / 1024 * float64(v.PerKB)))
	}
	return v.Inner.Combine(a, b)
}
