package agg

import (
	"encoding/binary"
	"math"
	"sort"
	"strings"
)

// Doc is one search result: a scored document, optionally carrying its text
// (needed by CPU-intensive aggregation functions such as Categorise).
type Doc struct {
	ID    uint64
	Score float64
	Text  string
}

// EncodeDocs serialises documents in canonical order (score descending,
// then ID ascending).
func EncodeDocs(docs []Doc) []byte {
	sortDocs(docs)
	size := binary.MaxVarintLen64
	for i := range docs {
		size += 2*binary.MaxVarintLen64 + 8 + len(docs[i].Text)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(docs)))
	for i := range docs {
		buf = binary.AppendUvarint(buf, docs[i].ID)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(docs[i].Score))
		buf = binary.AppendUvarint(buf, uint64(len(docs[i].Text)))
		buf = append(buf, docs[i].Text...)
	}
	return buf
}

// DecodeDocs parses a payload produced by EncodeDocs.
func DecodeDocs(p []byte) ([]Doc, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, ErrBadPayload
	}
	p = p[n:]
	if count > uint64(len(p))+1 {
		return nil, ErrBadPayload
	}
	docs := make([]Doc, 0, count)
	for i := uint64(0); i < count; i++ {
		id, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, ErrBadPayload
		}
		p = p[n:]
		if len(p) < 8 {
			return nil, ErrBadPayload
		}
		score := math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
		tlen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p[n:])) < tlen {
			return nil, ErrBadPayload
		}
		p = p[n:]
		text := string(p[:tlen])
		p = p[tlen:]
		docs = append(docs, Doc{ID: id, Score: score, Text: text})
	}
	if len(p) != 0 {
		return nil, ErrBadPayload
	}
	return docs, nil
}

func sortDocs(docs []Doc) {
	sort.Slice(docs, func(i, j int) bool {
		if docs[i].Score != docs[j].Score {
			return docs[i].Score > docs[j].Score
		}
		return docs[i].ID < docs[j].ID
	})
}

// TopK keeps the K highest-scored documents, the canonical search-engine
// aggregation (§2.1: "each index server ... returns the top k responses
// best matching the query").
type TopK struct {
	K int
}

// Name implements Aggregator.
func (t TopK) Name() string { return "topk" }

// Combine implements Aggregator.
func (t TopK) Combine(a, b []byte) ([]byte, error) {
	av, err := DecodeDocs(a)
	if err != nil {
		return nil, err
	}
	bv, err := DecodeDocs(b)
	if err != nil {
		return nil, err
	}
	out := append(av, bv...)
	sortDocs(out)
	if t.K > 0 && len(out) > t.K {
		out = out[:t.K]
	}
	return EncodeDocs(out), nil
}

// Sample retains a deterministic pseudo-random fraction Ratio of the merged
// documents, the paper's computationally cheap Solr aggregation function
// (§4.2.1: "returns a randomly chosen subset of the documents to the user
// according to a specified output ratio α"). Selection by a hash of the
// document ID keeps the function associative, commutative and idempotent.
type Sample struct {
	Ratio float64
}

// Name implements Aggregator.
func (Sample) Name() string { return "sample" }

// keep reports whether a document survives the sample.
func (s Sample) keep(id uint64) bool {
	// SplitMix64 finaliser as a uniform hash of the ID.
	x := id + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x%1e6) < s.Ratio*1e6
}

// Combine implements Aggregator.
func (s Sample) Combine(a, b []byte) ([]byte, error) {
	av, err := DecodeDocs(a)
	if err != nil {
		return nil, err
	}
	bv, err := DecodeDocs(b)
	if err != nil {
		return nil, err
	}
	out := make([]Doc, 0, len(av)+len(bv))
	for _, d := range append(av, bv...) {
		if s.keep(d.ID) {
			out = append(out, d)
		}
	}
	return EncodeDocs(out), nil
}

// Category is one classification target of Categorise.
type Category struct {
	Name  string
	Terms []string
}

// Categorise is the paper's CPU-intensive Solr aggregation function
// (§4.2.1): it classifies documents into base categories by scanning their
// text for category terms and returns the top-K results per category.
// Payloads are a tagged union: raw documents (from workers) or an already
// classified summary (from upstream aggregation); Combine classifies any
// raw side and then merges summaries, so it stays associative and
// commutative.
type Categorise struct {
	K          int
	Categories []Category
}

// Name implements Aggregator.
func (Categorise) Name() string { return "categorise" }

const (
	tagRawDocs byte = 0
	tagSummary byte = 1
)

// TagDocs marks an EncodeDocs payload as raw input for Categorise.
func TagDocs(encoded []byte) []byte {
	return append([]byte{tagRawDocs}, encoded...)
}

// classify scores a document against every category by counting term
// occurrences; this repeated text scanning is the deliberate CPU cost.
func (c Categorise) classify(d Doc) (int, float64) {
	best, bestScore := -1, 0.0
	for ci, cat := range c.Categories {
		score := 0.0
		for _, term := range cat.Terms {
			score += float64(strings.Count(d.Text, term))
		}
		if score > bestScore {
			best, bestScore = ci, score
		}
	}
	return best, bestScore
}

// summary is the classified form: per category, the top-K (ID, score) docs.
type summary struct {
	perCat [][]Doc // Text stripped; Score is the classification score
}

func (c Categorise) toSummary(p []byte) (*summary, error) {
	if len(p) == 0 {
		return nil, ErrBadPayload
	}
	switch p[0] {
	case tagSummary:
		return c.decodeSummary(p[1:])
	case tagRawDocs:
		docs, err := DecodeDocs(p[1:])
		if err != nil {
			return nil, err
		}
		s := &summary{perCat: make([][]Doc, len(c.Categories))}
		for _, d := range docs {
			cat, score := c.classify(d)
			if cat < 0 {
				continue
			}
			s.perCat[cat] = append(s.perCat[cat], Doc{ID: d.ID, Score: score})
		}
		s.trim(c.K)
		return s, nil
	default:
		return nil, ErrBadPayload
	}
}

func (s *summary) trim(k int) {
	for ci := range s.perCat {
		sortDocs(s.perCat[ci])
		if k > 0 && len(s.perCat[ci]) > k {
			s.perCat[ci] = s.perCat[ci][:k]
		}
	}
}

func (c Categorise) encodeSummary(s *summary) []byte {
	buf := []byte{tagSummary}
	buf = binary.AppendUvarint(buf, uint64(len(s.perCat)))
	for _, docs := range s.perCat {
		buf = binary.AppendUvarint(buf, uint64(len(docs)))
		for _, d := range docs {
			buf = binary.AppendUvarint(buf, d.ID)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.Score))
		}
	}
	return buf
}

func (c Categorise) decodeSummary(p []byte) (*summary, error) {
	ncats, n := binary.Uvarint(p)
	if n <= 0 || ncats != uint64(len(c.Categories)) {
		return nil, ErrBadPayload
	}
	p = p[n:]
	s := &summary{perCat: make([][]Doc, ncats)}
	for ci := uint64(0); ci < ncats; ci++ {
		ndocs, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, ErrBadPayload
		}
		p = p[n:]
		for i := uint64(0); i < ndocs; i++ {
			id, n := binary.Uvarint(p)
			if n <= 0 || len(p[n:]) < 8 {
				return nil, ErrBadPayload
			}
			p = p[n:]
			score := math.Float64frombits(binary.LittleEndian.Uint64(p))
			p = p[8:]
			s.perCat[ci] = append(s.perCat[ci], Doc{ID: id, Score: score})
		}
	}
	if len(p) != 0 {
		return nil, ErrBadPayload
	}
	return s, nil
}

// Combine implements Aggregator.
func (c Categorise) Combine(a, b []byte) ([]byte, error) {
	as, err := c.toSummary(a)
	if err != nil {
		return nil, err
	}
	bs, err := c.toSummary(b)
	if err != nil {
		return nil, err
	}
	for ci := range as.perCat {
		as.perCat[ci] = append(as.perCat[ci], bs.perCat[ci]...)
	}
	as.trim(c.K)
	return c.encodeSummary(as), nil
}

// TopPerCategory decodes a Categorise result into per-category documents,
// for application-level consumption of the final result.
func (c Categorise) TopPerCategory(p []byte) (map[string][]Doc, error) {
	s, err := c.toSummary(p)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]Doc, len(c.Categories))
	for ci, docs := range s.perCat {
		out[c.Categories[ci].Name] = docs
	}
	return out, nil
}
