package agg

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"netagg/internal/stats"
)

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register("wc", KVCombiner{Op: OpSum})
	if _, ok := r.Lookup("wc"); !ok {
		t.Fatal("registered app not found")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("unknown app found")
	}
	if got := r.Apps(); len(got) != 1 || got[0] != "wc" {
		t.Fatalf("Apps = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Register("wc", KVCombiner{})
}

func TestKVRoundTrip(t *testing.T) {
	in := []KV{{"b", 2}, {"a", -1}, {"c", 1 << 40}}
	enc := EncodeKVs(in)
	out, err := DecodeKVs(enc)
	if err != nil {
		t.Fatal(err)
	}
	want := []KV{{"a", -1}, {"b", 2}, {"c", 1 << 40}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
}

func TestKVDecodeRejectsGarbage(t *testing.T) {
	for _, p := range [][]byte{nil, {0xff}, {5, 1, 'a'}, append(EncodeKVs([]KV{{"a", 1}}), 0)} {
		if _, err := DecodeKVs(p); err == nil {
			t.Fatalf("expected error for %v", p)
		}
	}
}

func TestKVCombinerSum(t *testing.T) {
	a := EncodeKVs([]KV{{"x", 1}, {"y", 2}})
	b := EncodeKVs([]KV{{"y", 3}, {"z", 4}})
	out, err := KVCombiner{Op: OpSum}.Combine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := DecodeKVs(out)
	want := []KV{{"x", 1}, {"y", 5}, {"z", 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestKVCombinerMaxMin(t *testing.T) {
	a := EncodeKVs([]KV{{"k", 5}})
	b := EncodeKVs([]KV{{"k", 9}})
	for _, c := range []struct {
		op   KVOp
		want int64
	}{{OpMax, 9}, {OpMin, 5}} {
		out, err := KVCombiner{Op: c.op}.Combine(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := DecodeKVs(out)
		if got[0].Val != c.want {
			t.Fatalf("%v: got %d, want %d", c.op, got[0].Val, c.want)
		}
	}
}

func TestItemsRoundTrip(t *testing.T) {
	in := [][]byte{[]byte("row1"), []byte(""), []byte("row2")}
	out, err := DecodeItems(EncodeItems(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || string(out[0]) != "row1" || len(out[1]) != 0 {
		t.Fatalf("round trip mismatch: %q", out)
	}
}

func TestConcatPreservesEverything(t *testing.T) {
	a := EncodeItems([][]byte{[]byte("b"), []byte("a")})
	b := EncodeItems([][]byte{[]byte("c")})
	out, err := Concat{}.Combine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	items, _ := DecodeItems(out)
	if len(items) != 3 {
		t.Fatalf("concat lost items: %q", items)
	}
}

func TestDocsRoundTrip(t *testing.T) {
	in := []Doc{{ID: 2, Score: 0.5, Text: "hello"}, {ID: 1, Score: 0.9, Text: ""}}
	out, err := DecodeDocs(EncodeDocs(in))
	if err != nil {
		t.Fatal(err)
	}
	// Canonical order: score descending.
	if out[0].ID != 1 || out[1].ID != 2 || out[1].Text != "hello" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestTopKKeepsBest(t *testing.T) {
	a := EncodeDocs([]Doc{{ID: 1, Score: 0.9}, {ID: 2, Score: 0.1}})
	b := EncodeDocs([]Doc{{ID: 3, Score: 0.5}, {ID: 4, Score: 0.8}})
	out, err := TopK{K: 2}.Combine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	docs, _ := DecodeDocs(out)
	if len(docs) != 2 || docs[0].ID != 1 || docs[1].ID != 4 {
		t.Fatalf("topk mismatch: %+v", docs)
	}
}

func TestSampleReducesAndIsIdempotent(t *testing.T) {
	var docs []Doc
	for i := 0; i < 2000; i++ {
		docs = append(docs, Doc{ID: uint64(i), Score: float64(i)})
	}
	s := Sample{Ratio: 0.05}
	out, err := s.Combine(EncodeDocs(docs[:1000]), EncodeDocs(docs[1000:]))
	if err != nil {
		t.Fatal(err)
	}
	kept, _ := DecodeDocs(out)
	if frac := float64(len(kept)) / 2000; frac < 0.02 || frac > 0.10 {
		t.Fatalf("sample kept %.3f, want ≈0.05", frac)
	}
	// Sampling an already sampled payload must not reduce further.
	again, err := s.Combine(out, EncodeDocs(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, out) {
		t.Fatal("sample is not idempotent")
	}
}

func testCategorise() Categorise {
	return Categorise{
		K: 3,
		Categories: []Category{
			{Name: "science", Terms: []string{"atom", "energy", "quantum"}},
			{Name: "sport", Terms: []string{"goal", "match", "team"}},
		},
	}
}

func TestCategoriseClassifiesAndKeepsTopK(t *testing.T) {
	c := testCategorise()
	var docs []Doc
	for i := 0; i < 10; i++ {
		docs = append(docs, Doc{ID: uint64(i), Text: "atom atom energy"})
	}
	docs = append(docs, Doc{ID: 100, Text: "goal match team goal"})
	docs = append(docs, Doc{ID: 101, Text: "nothing relevant"})
	out, err := c.Combine(TagDocs(EncodeDocs(docs[:6])), TagDocs(EncodeDocs(docs[6:])))
	if err != nil {
		t.Fatal(err)
	}
	per, err := c.TopPerCategory(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(per["science"]) != 3 {
		t.Fatalf("science docs = %d, want K=3", len(per["science"]))
	}
	if len(per["sport"]) != 1 || per["sport"][0].ID != 100 {
		t.Fatalf("sport docs = %+v", per["sport"])
	}
}

func TestCategoriseRejectsGarbage(t *testing.T) {
	c := testCategorise()
	if _, err := c.Combine([]byte{9, 9, 9}, TagDocs(EncodeDocs(nil))); err == nil {
		t.Fatal("expected error on bad tag")
	}
	if _, err := c.Combine(nil, TagDocs(EncodeDocs(nil))); err == nil {
		t.Fatal("expected error on empty payload")
	}
}

// randomKVPayload builds a random KV payload with keys from a small
// alphabet so merges collide.
func randomKVPayload(rn *stats.Rand) []byte {
	n := rn.Intn(8)
	kvs := make([]KV, 0, n)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", rn.Intn(6))
		if seen[k] {
			continue
		}
		seen[k] = true
		kvs = append(kvs, KV{Key: k, Val: int64(rn.Intn(100)) - 50})
	}
	return EncodeKVs(kvs)
}

func randomDocsPayload(rn *stats.Rand, tagged bool) []byte {
	n := rn.Intn(6)
	docs := make([]Doc, 0, n)
	for i := 0; i < n; i++ {
		docs = append(docs, Doc{
			ID:    rn.Uint64() % 1000,
			Score: rn.Float64(),
			Text:  []string{"atom energy", "goal team", "plain text"}[rn.Intn(3)],
		})
	}
	enc := EncodeDocs(docs)
	if tagged {
		return TagDocs(enc)
	}
	return enc
}

// Property: every built-in aggregator is associative and commutative
// (§2.1), the correctness requirement for on-path aggregation.
func TestAggregatorsAssociativeCommutative(t *testing.T) {
	cases := []struct {
		name string
		agg  Aggregator
		gen  func(*stats.Rand) []byte
	}{
		{"kv-sum", KVCombiner{Op: OpSum}, randomKVPayload},
		{"kv-max", KVCombiner{Op: OpMax}, randomKVPayload},
		{"kv-min", KVCombiner{Op: OpMin}, randomKVPayload},
		{"concat", Concat{}, func(rn *stats.Rand) []byte {
			n := rn.Intn(5)
			items := make([][]byte, n)
			for i := range items {
				items[i] = []byte(fmt.Sprintf("item%d", rn.Intn(10)))
			}
			return EncodeItems(items)
		}},
		{"topk", TopK{K: 4}, func(rn *stats.Rand) []byte { return randomDocsPayload(rn, false) }},
		{"sample", Sample{Ratio: 0.5}, func(rn *stats.Rand) []byte { return randomDocsPayload(rn, false) }},
		{"categorise", testCategorise(), func(rn *stats.Rand) []byte { return randomDocsPayload(rn, true) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			check := func(seed int64) bool {
				rn := stats.NewRand(seed)
				a, b, d := c.gen(rn), c.gen(rn), c.gen(rn)
				ab, err1 := c.agg.Combine(a, b)
				ba, err2 := c.agg.Combine(b, a)
				if err1 != nil || err2 != nil {
					return false
				}
				if !bytes.Equal(ab, ba) {
					return false // not commutative
				}
				abd, err1 := c.agg.Combine(ab, d)
				bd, err2 := c.agg.Combine(b, d)
				if err1 != nil || err2 != nil {
					return false
				}
				abd2, err3 := c.agg.Combine(a, bd)
				if err3 != nil {
					return false
				}
				return bytes.Equal(abd, abd2) // associative
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
