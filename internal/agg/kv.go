package agg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// KV is one key/value pair of a map/reduce-style partial result.
type KV struct {
	Key string
	Val int64
}

// ErrBadPayload reports an undecodable partial result.
var ErrBadPayload = errors.New("agg: malformed payload")

// EncodeKVs serialises pairs in canonical (key-sorted) order: a varint
// count followed by length-prefixed keys and zig-zag varint values. The
// input is sorted in place.
func EncodeKVs(kvs []KV) []byte {
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	size := binary.MaxVarintLen64
	for i := range kvs {
		size += binary.MaxVarintLen64*2 + len(kvs[i].Key)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(kvs)))
	for i := range kvs {
		buf = binary.AppendUvarint(buf, uint64(len(kvs[i].Key)))
		buf = append(buf, kvs[i].Key...)
		buf = binary.AppendVarint(buf, kvs[i].Val)
	}
	return buf
}

// DecodeKVs parses a payload produced by EncodeKVs.
func DecodeKVs(p []byte) ([]KV, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, ErrBadPayload
	}
	p = p[n:]
	if count > uint64(len(p))+1 {
		return nil, ErrBadPayload
	}
	kvs := make([]KV, 0, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p[n:])) < klen {
			return nil, ErrBadPayload
		}
		p = p[n:]
		key := string(p[:klen])
		p = p[klen:]
		val, n := binary.Varint(p)
		if n <= 0 {
			return nil, ErrBadPayload
		}
		p = p[n:]
		kvs = append(kvs, KV{Key: key, Val: val})
	}
	if len(p) != 0 {
		return nil, ErrBadPayload
	}
	return kvs, nil
}

// KVOp is the per-key reduction of a KVCombiner.
type KVOp int

const (
	// OpSum adds values per key (WordCount, UserVisits revenue,
	// AdPredictor click counts, PageRank contributions).
	OpSum KVOp = iota
	// OpMax keeps the per-key maximum.
	OpMax
	// OpMin keeps the per-key minimum.
	OpMin
)

// String names the operation.
func (op KVOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// KVCombiner merges sorted key/value payloads with a per-key reduction, the
// agg box counterpart of a Hadoop combiner (§3.2.1: "a Hadoop aggregation
// wrapper exposes the standard interface of combiner functions").
type KVCombiner struct {
	Op KVOp
}

// Name implements Aggregator.
func (c KVCombiner) Name() string { return "kv-" + c.Op.String() }

// Combine implements Aggregator by merge-joining the two sorted payloads.
func (c KVCombiner) Combine(a, b []byte) ([]byte, error) {
	av, err := DecodeKVs(a)
	if err != nil {
		return nil, err
	}
	bv, err := DecodeKVs(b)
	if err != nil {
		return nil, err
	}
	out := make([]KV, 0, len(av)+len(bv))
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		switch {
		case av[i].Key < bv[j].Key:
			out = append(out, av[i])
			i++
		case av[i].Key > bv[j].Key:
			out = append(out, bv[j])
			j++
		default:
			out = append(out, KV{Key: av[i].Key, Val: c.reduce(av[i].Val, bv[j].Val)})
			i++
			j++
		}
	}
	out = append(out, av[i:]...)
	out = append(out, bv[j:]...)
	return EncodeKVs(out), nil
}

func (c KVCombiner) reduce(a, b int64) int64 {
	switch c.Op {
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	default:
		return a + b
	}
}

// Concat appends payloads without any reduction: the aggregator of
// non-reducible data such as TeraSort rows (identity reduce, Fig 22's TS
// bar shows no benefit). Payload format: varint count + length-prefixed
// items.
type Concat struct{}

// Name implements Aggregator.
func (Concat) Name() string { return "concat" }

// Combine implements Aggregator.
func (Concat) Combine(a, b []byte) ([]byte, error) {
	av, err := DecodeItems(a)
	if err != nil {
		return nil, err
	}
	bv, err := DecodeItems(b)
	if err != nil {
		return nil, err
	}
	// Canonical order keeps Combine commutative.
	out := append(av, bv...)
	sort.Slice(out, func(i, j int) bool { return string(out[i]) < string(out[j]) })
	return EncodeItems(out), nil
}

// EncodeItems serialises opaque items: varint count + length-prefixed blobs.
func EncodeItems(items [][]byte) []byte {
	size := binary.MaxVarintLen64
	for _, it := range items {
		size += binary.MaxVarintLen64 + len(it)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = binary.AppendUvarint(buf, uint64(len(it)))
		buf = append(buf, it...)
	}
	return buf
}

// DecodeItems parses a payload produced by EncodeItems.
func DecodeItems(p []byte) ([][]byte, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, ErrBadPayload
	}
	p = p[n:]
	if count > uint64(len(p))+1 {
		return nil, ErrBadPayload
	}
	items := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		ilen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p[n:])) < ilen {
			return nil, ErrBadPayload
		}
		p = p[n:]
		item := make([]byte, ilen)
		copy(item, p[:ilen])
		p = p[ilen:]
		items = append(items, item)
	}
	if len(p) != 0 {
		return nil, ErrBadPayload
	}
	return items, nil
}
