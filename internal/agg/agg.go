// Package agg defines the aggregation function interface that agg boxes
// execute (§3.2.1 "Aggregation tasks") and the built-in aggregators used by
// the evaluation: key/value combiners for map/reduce workloads (WordCount,
// AdPredictor, PageRank, UserVisits), top-k merging for search, the paper's
// two Solr functions — the cheap `sample` and the CPU-intensive
// `categorise` — and an identity concatenation for non-reducible data
// (TeraSort).
//
// Aggregators operate on serialised partial results ([]byte) so boxes can
// host unmodified application functions behind a thin wrapper, mirroring
// the paper's aggregation wrappers. Every aggregator must be associative
// and commutative (§2.1): Combine(a, Combine(b, c)) must equal
// Combine(Combine(a, b), c) for any grouping and order.
package agg

import "fmt"

// Aggregator merges two serialised partial results into one.
type Aggregator interface {
	// Name identifies the function in logs and scheduling stats.
	Name() string
	// Combine merges two partial results. It must be associative and
	// commutative up to the codec's canonical form, and must not retain or
	// modify its inputs. The returned slice must be freshly allocated,
	// never an alias of a or b: the aggregation tree releases both input
	// buffers back to the pool the moment Combine returns (see
	// core.LocalTree.combine and DESIGN.md §13).
	Combine(a, b []byte) ([]byte, error)
}

// Registry maps application names to their aggregator, the box-side
// counterpart of deploying an application's aggregation function.
type Registry struct {
	byName map[string]Aggregator
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Aggregator)}
}

// Register adds an aggregator under the application name. It panics on a
// duplicate name, which indicates a deployment configuration error.
func (r *Registry) Register(app string, a Aggregator) {
	if _, dup := r.byName[app]; dup {
		panic(fmt.Sprintf("agg: duplicate application %q", app))
	}
	r.byName[app] = a
}

// Lookup returns the application's aggregator.
func (r *Registry) Lookup(app string) (Aggregator, bool) {
	a, ok := r.byName[app]
	return a, ok
}

// Apps lists the registered application names.
func (r *Registry) Apps() []string {
	out := make([]string, 0, len(r.byName))
	for name := range r.byName {
		out = append(out, name)
	}
	return out
}
