// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks: one benchmark per figure, printing the same
// rows/series the paper plots. Simulation figures (Figs 2, 3, 6-14) run on
// the flow-level simulator at the paper's full (1,024-server) scale — the
// incremental allocator made full-scale regeneration cheaper than the old
// medium-scale default; testbed figures (Figs 15-26) run on the emulated
// testbed. A single iteration of each benchmark regenerates the whole
// figure, so -benchtime is typically left at its default (every benchmark
// runs once).
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the paper-vs-measured comparison for every entry.
package bench

import (
	"testing"
	"time"

	"netagg/internal/figures"
	"netagg/internal/tbfig"
)

// simOpts runs the simulation figures at the benchmark default scale:
// ScaleFull, the paper's 1,024 servers. Tests and the CI bench smoke stay
// on ScaleSmall.
var simOpts = figures.Options{Scale: figures.ScaleFull, Seed: 1}

// tbOpts shortens the per-point measurement window slightly so the full
// testbed suite stays in the minutes range.
var tbOpts = tbfig.Options{Window: 2 * time.Second, Seed: 1}

// runSimFig regenerates one simulation figure per iteration and logs it.
func runSimFig(b *testing.B, fn func(figures.Options) *figures.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := fn(simOpts)
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// runTbFig regenerates one testbed figure per iteration and logs it.
func runTbFig(b *testing.B, fn func(tbfig.Options) *tbfig.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := fn(tbOpts)
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// --- Feasibility study (§2.4) ---

func BenchmarkFig02BoxRate(b *testing.B)  { runSimFig(b, figures.Fig02) }
func BenchmarkFig03CostPerf(b *testing.B) { runSimFig(b, figures.Fig03) }

// --- Simulation results (§4.1) ---

func BenchmarkFig06FCTAll(b *testing.B)        { runSimFig(b, figures.Fig06) }
func BenchmarkFig07FCTBackground(b *testing.B) { runSimFig(b, figures.Fig07) }
func BenchmarkFig08OutputRatio(b *testing.B)   { runSimFig(b, figures.Fig08) }
func BenchmarkFig09LinkTraffic(b *testing.B)   { runSimFig(b, figures.Fig09) }
func BenchmarkFig10AggFraction(b *testing.B)   { runSimFig(b, figures.Fig10) }
func BenchmarkFig11Oversub(b *testing.B)       { runSimFig(b, figures.Fig11) }
func BenchmarkFig12PartialDeploy(b *testing.B) { runSimFig(b, figures.Fig12) }
func BenchmarkFig13TenGig(b *testing.B)        { runSimFig(b, figures.Fig13) }
func BenchmarkFig14Stragglers(b *testing.B)    { runSimFig(b, figures.Fig14) }

// --- Implementation effort (Table 1) ---

func BenchmarkTab01Loc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := tbfig.Tab01()
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// --- Testbed results (§4.2) ---

func BenchmarkFig15LocalTree(b *testing.B)         { runTbFig(b, tbfig.Fig15) }
func BenchmarkFig16SolrThroughput(b *testing.B)    { runTbFig(b, tbfig.Fig16) }
func BenchmarkFig17SolrLatency(b *testing.B)       { runTbFig(b, tbfig.Fig17) }
func BenchmarkFig18SolrOutputRatio(b *testing.B)   { runTbFig(b, tbfig.Fig18) }
func BenchmarkFig19TwoRack(b *testing.B)           { runTbFig(b, tbfig.Fig19) }
func BenchmarkFig20ScaleOut(b *testing.B)          { runTbFig(b, tbfig.Fig20) }
func BenchmarkFig21ScaleUp(b *testing.B)           { runTbFig(b, tbfig.Fig21) }
func BenchmarkFig22Hadoop(b *testing.B)            { runTbFig(b, tbfig.Fig22) }
func BenchmarkFig23HadoopOutputRatio(b *testing.B) { runTbFig(b, tbfig.Fig23) }
func BenchmarkFig24HadoopDataSize(b *testing.B)    { runTbFig(b, tbfig.Fig24) }
func BenchmarkFig25FixedWFQ(b *testing.B)          { runTbFig(b, tbfig.Fig25) }
func BenchmarkFig26AdaptiveWFQ(b *testing.B)       { runTbFig(b, tbfig.Fig26) }

// tbfigExtFanout indirects the extension experiment so the ablation file
// stays free of direct figure imports.
func tbfigExtFanout() *tbfig.Report { return tbfig.ExtFanout(tbOpts) }
